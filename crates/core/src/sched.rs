//! The sharded work-stealing scheduler core and its deterministic chaos
//! harness.
//!
//! `run_sharded` (crate-internal) is the execution substrate underneath
//! [`crate::engine::Engine`] and [`crate::grid::run_parallel`]: task
//! indices are partitioned into **shards** (keyed by the caller — the
//! engine shards by [`crate::engine::TaskCoord`], so all tasks of one
//! dataset/series land on the same shard and stay cache-warm), each
//! shard owns a **bounded** queue built on the vendored crossbeam MPMC
//! channel, and workers drain their home shard first, then **steal**
//! from sibling shards when idle. Submission applies **backpressure**:
//! a full shard either blocks the submitter ([`Backpressure::Block`],
//! the grid default) or reports a typed [`QueueFull`]
//! ([`Backpressure::Fail`], for latency-sensitive callers) — the
//! scheduler never materialises an unbounded internal task vector.
//!
//! Three hard invariants, all exercised by the chaos suite
//! (`crates/core/tests/engine_chaos.rs`):
//!
//! * **Exactly-once execution** — every task index runs exactly once,
//!   no matter how workers are killed, stalled, or slowed. A killed
//!   worker re-queues its in-flight task onto the rescue queue before
//!   dying; a post-join recovery pass on the caller thread runs
//!   anything that still never executed (e.g. when *every* worker
//!   died), so zero tasks are lost under any schedule.
//! * **Deterministic assembly** — results land in per-index slots, so
//!   the returned vector is in task order and byte-identical across
//!   worker counts, shard counts, and steal schedules.
//! * **Bounded occupancy** — at most `shards × capacity` tasks are
//!   queued at any instant (each queue is a bounded channel); the peak
//!   is tracked in [`RunStats::peak_queue_depth`] and exported as the
//!   `engine_queue_depth` gauge.
//!
//! [`ChaosSchedule`] scripts fault injection deterministically: events
//! are keyed by *task index* (not worker or wall clock), generated
//! either explicitly ([`ChaosSchedule::scripted`]) or from a seed via
//! the same Lcg64 generator the fuzz harness uses
//! ([`ChaosSchedule::seeded`]), and each fires exactly once — a task
//! re-queued by a kill is not re-killed on its second dequeue.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use compression::mutate::Lcg64;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};

/// Default per-shard bounded-queue capacity. Small on purpose: the grid
/// holds its task list in the caller's slice, so queued indices only
/// need to cover scheduling slack, not the whole grid.
pub const DEFAULT_QUEUE_CAPACITY: usize = 32;

/// How submission reacts to a full shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Block the submitter until the shard drains (the grid default:
    /// the whole task list always runs, memory stays bounded).
    #[default]
    Block,
    /// Fail fast with a typed [`QueueFull`] — for callers that would
    /// rather shed work than wait (serving-style admission control).
    Fail,
}

/// Typed backpressure rejection: the target shard's bounded queue was
/// full at submission time under [`Backpressure::Fail`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Index of the task that was rejected (it never ran).
    pub index: usize,
    /// Shard whose queue was full.
    pub shard: usize,
    /// The shard's configured capacity.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {} rejected: shard {} queue full (capacity {})",
            self.index, self.shard, self.capacity
        )
    }
}

impl std::error::Error for QueueFull {}

/// One scripted fault. Events are injected at the moment a worker
/// dequeues the matching task index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// The dequeuing worker re-queues the task and dies (thread exits).
    /// The task is *not* lost: a sibling picks it off the rescue queue,
    /// or the post-join recovery pass runs it inline.
    Kill,
    /// The worker sleeps this many milliseconds while *holding* the
    /// task before running it, starving its shard (queue occupancy
    /// builds behind it).
    StallMs(u64),
    /// The worker runs the task, then sleeps this many milliseconds —
    /// a persistently slow worker that forces siblings to steal.
    SlowMs(u64),
    /// The per-task completion callback panics after the task ran. The
    /// engine must trap it (a regression for the `on_done` escape).
    CallbackPanic,
}

/// A deterministic fault schedule: at most one [`ChaosEvent`] per task
/// index, each firing exactly once. Keying by task index (not worker id
/// or wall clock) is what makes schedules replayable across thread and
/// shard counts.
#[derive(Debug, Default)]
pub struct ChaosSchedule {
    events: HashMap<usize, (ChaosEvent, AtomicBool)>,
}

impl ChaosSchedule {
    /// Builds a schedule from explicit `(task index, event)` pairs.
    /// A later duplicate of an index replaces the earlier event.
    pub fn scripted<I: IntoIterator<Item = (usize, ChaosEvent)>>(events: I) -> Self {
        ChaosSchedule {
            events: events.into_iter().map(|(i, e)| (i, (e, AtomicBool::new(false)))).collect(),
        }
    }

    /// Generates a schedule for `n_tasks` tasks from a seed, using the
    /// same Lcg64 generator the fuzz harness replays
    /// ([`compression::mutate`]). Roughly `intensity_pct`% of tasks get
    /// an event, split across all four kinds; sleeps are 1–4 ms so
    /// schedules stay test-friendly. Same `(seed, n_tasks,
    /// intensity_pct)` ⇒ identical schedule.
    pub fn seeded(seed: u64, n_tasks: usize, intensity_pct: usize) -> Self {
        let mut rng = Lcg64::new(seed);
        let mut events = HashMap::new();
        for i in 0..n_tasks {
            if rng.below(100) >= intensity_pct {
                continue;
            }
            let event = match rng.below(4) {
                0 => ChaosEvent::Kill,
                1 => ChaosEvent::StallMs(1 + rng.below(4) as u64),
                2 => ChaosEvent::SlowMs(1 + rng.below(4) as u64),
                _ => ChaosEvent::CallbackPanic,
            };
            events.insert(i, (event, AtomicBool::new(false)));
        }
        ChaosSchedule { events }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events matching a predicate (for test
    /// assertions on seeded schedules).
    pub fn count(&self, pred: impl Fn(ChaosEvent) -> bool) -> usize {
        self.events.values().filter(|(e, _)| pred(*e)).count()
    }

    /// Consumes the event for `index`, if one is scheduled and has not
    /// fired yet. One-shot: the second dequeue of a kill-requeued task
    /// sees `None` and runs normally.
    pub fn take(&self, index: usize) -> Option<ChaosEvent> {
        let (event, fired) = self.events.get(&index)?;
        if fired.swap(true, Ordering::AcqRel) {
            return None;
        }
        Some(*event)
    }
}

/// Counters from one scheduler run. All values are exact (not
/// sampled) except `peak_queue_depth`, which is sampled at submission
/// points — so it never over-reports and is always ≤ shards × capacity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Tasks a worker dequeued from a sibling shard's queue.
    pub steals: u64,
    /// Peak total occupancy across all shard queues.
    pub peak_queue_depth: usize,
    /// Workers that died to a [`ChaosEvent::Kill`].
    pub worker_deaths: u64,
    /// Tasks re-queued by dying workers (each ran later, exactly once).
    pub requeued: u64,
    /// Tasks run by the post-join recovery pass on the caller thread.
    pub rescued: u64,
    /// Tasks the submitter ran inline because every worker was dead.
    pub inline_runs: u64,
    /// Completion callbacks that panicked and were trapped (filled in
    /// by the engine, which owns the callback trap).
    pub callback_panics: u64,
}

/// Shared state of one run (everything workers touch).
struct PoolShared<'a, R> {
    /// One bounded receiver per shard (indices travel, not tasks).
    shards: &'a [Receiver<usize>],
    /// Kill-requeued task indices; drained before any queue is polled.
    /// Bounded by the number of kill events in the schedule.
    rescue: Mutex<VecDeque<usize>>,
    /// Per-index result slots; every slot is `Some` once the run ends.
    results: Mutex<Vec<Option<R>>>,
    /// Set once the submitter has placed (or inlined) every task.
    done: AtomicBool,
    /// Live worker count (the submitter goes inline when it hits zero).
    alive: AtomicUsize,
    steals: AtomicU64,
    deaths: AtomicU64,
    requeued: AtomicU64,
    chaos: Option<&'a ChaosSchedule>,
}

impl<R> PoolShared<'_, R> {
    fn rescue_pop(&self) -> Option<usize> {
        self.rescue.lock().expect("rescue lock never poisoned").pop_front()
    }

    /// Records a completed result into its slot.
    fn complete(&self, index: usize, result: R) {
        self.results.lock().expect("results lock never poisoned")[index] = Some(result);
    }

    /// Pops a task index: rescue queue first (requeued tasks must not
    /// starve), then the home shard, then a steal sweep over siblings.
    /// Returns `(index, stolen)`.
    fn pop(&self, home: usize) -> Option<(usize, bool)> {
        if let Some(i) = self.rescue_pop() {
            return Some((i, false));
        }
        if let Ok(i) = self.shards[home].try_recv() {
            return Some((i, false));
        }
        for d in 1..self.shards.len() {
            let s = (home + d) % self.shards.len();
            if let Ok(i) = self.shards[s].try_recv() {
                return Some((i, true));
            }
        }
        None
    }

    /// Whether submission has finished and every queue is drained. Once
    /// true it stays true for queue contents (no further sends happen),
    /// so idle workers can exit. A kill racing this check can still
    /// orphan a rescue entry; the post-join recovery pass covers it.
    fn finished(&self) -> bool {
        self.done.load(Ordering::Acquire)
            && self.shards.iter().all(|rx| rx.is_empty())
            && self.rescue.lock().expect("rescue lock never poisoned").is_empty()
    }
}

/// Runs `exec(i, _)` for every `i in 0..n` over `workers` work-stealing
/// workers and `shards` bounded queues of `capacity` each, returning the
/// results **in task order** plus the run's [`RunStats`].
///
/// * `shard_of(i)` maps a task to its shard key (reduced modulo the
///   shard count); tasks sharing a key share a queue and, under low
///   steal pressure, a worker.
/// * `exec(i, inject_callback_panic)` must be **total** (trap its own
///   panics); the bool forwards a [`ChaosEvent::CallbackPanic`] for the
///   engine's callback trap to exercise.
/// * Under [`Backpressure::Fail`], the first full queue aborts
///   submission with [`QueueFull`]; already-queued tasks still run and
///   every worker is joined, but results are discarded. Under
///   [`Backpressure::Block`] (the default) the call never fails.
#[allow(clippy::too_many_arguments)] // crate-internal; Engine is the ergonomic front
pub(crate) fn run_sharded<R, K, E>(
    n: usize,
    workers: usize,
    shards: usize,
    capacity: usize,
    chaos: Option<&ChaosSchedule>,
    backpressure: Backpressure,
    shard_of: K,
    exec: E,
) -> Result<(Vec<R>, RunStats), QueueFull>
where
    R: Send,
    K: Fn(usize) -> u64 + Sync,
    E: Fn(usize, bool) -> R + Sync,
{
    if n == 0 {
        return Ok((Vec::new(), RunStats::default()));
    }
    let workers = workers.max(1).min(n);
    let shards = shards.max(1).min(n);
    let capacity = capacity.max(1);
    let (senders, receivers): (Vec<Sender<usize>>, Vec<Receiver<usize>>) =
        (0..shards).map(|_| bounded::<usize>(capacity)).unzip();
    let shared = PoolShared {
        shards: &receivers,
        rescue: Mutex::new(VecDeque::new()),
        results: Mutex::new((0..n).map(|_| None).collect()),
        done: AtomicBool::new(false),
        alive: AtomicUsize::new(workers),
        steals: AtomicU64::new(0),
        deaths: AtomicU64::new(0),
        requeued: AtomicU64::new(0),
        chaos,
    };
    let inline_runs = AtomicU64::new(0);
    let peak_depth = AtomicUsize::new(0);

    // Runs one task on the *caller* thread (submitter fallback or the
    // post-join recovery pass). Worker-level chaos events make no sense
    // here — there is no worker to kill or stall — so the event is
    // consumed (keeping the one-shot accounting intact) but only a
    // callback-panic injection is honoured.
    let run_inline = |i: usize| {
        let inject =
            matches!(shared.chaos.and_then(|c| c.take(i)), Some(ChaosEvent::CallbackPanic));
        shared.complete(i, exec(i, inject));
    };

    // Runs one dequeued task, applying any chaos event scheduled for it.
    // Returns `false` when the worker must die (chaos kill).
    let run_task = |i: usize| {
        let event = shared.chaos.and_then(|c| c.take(i));
        if let Some(ChaosEvent::Kill) = event {
            // Killed at dequeue: hand the task to the rescue queue so a
            // sibling (or the recovery pass) runs it, then die.
            shared.rescue.lock().expect("rescue lock never poisoned").push_back(i);
            shared.requeued.fetch_add(1, Ordering::Relaxed);
            shared.deaths.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("engine_worker_deaths_total", &[], 1);
            return false;
        }
        if let Some(ChaosEvent::StallMs(ms)) = event {
            std::thread::sleep(Duration::from_millis(ms));
        }
        let inject = matches!(event, Some(ChaosEvent::CallbackPanic));
        shared.complete(i, exec(i, inject));
        if let Some(ChaosEvent::SlowMs(ms)) = event {
            std::thread::sleep(Duration::from_millis(ms));
        }
        true
    };

    let submitted = crossbeam::scope(|scope| {
        for w in 0..workers {
            let shared = &shared;
            let run_task = &run_task;
            scope.spawn(move |_| {
                let home = w % shards;
                loop {
                    match shared.pop(home) {
                        Some((i, stolen)) => {
                            if stolen {
                                shared.steals.fetch_add(1, Ordering::Relaxed);
                                telemetry::counter_add("engine_steals_total", &[], 1);
                            }
                            if !run_task(i) {
                                shared.alive.fetch_sub(1, Ordering::Relaxed);
                                return; // chaos kill: this worker is dead
                            }
                        }
                        None => {
                            if shared.finished() {
                                break;
                            }
                            // Idle: block briefly on the home shard so a
                            // submission wakes us without a spin, then
                            // re-sweep rescue and siblings.
                            match shared.shards[home].recv_timeout(Duration::from_millis(1)) {
                                Ok(i) => {
                                    if !run_task(i) {
                                        shared.alive.fetch_sub(1, Ordering::Relaxed);
                                        return;
                                    }
                                }
                                Err(RecvTimeoutError::Timeout)
                                | Err(RecvTimeoutError::Disconnected) => {}
                            }
                        }
                    }
                }
                shared.alive.fetch_sub(1, Ordering::Relaxed);
            });
        }

        // Submission runs on the caller thread, inside the scope: one
        // bounded send per task, so at most shards × capacity indices
        // are ever buffered.
        for i in 0..n {
            let shard = (shard_of(i) % shards as u64) as usize;
            loop {
                match senders[shard].try_send(i) {
                    Ok(()) => {
                        // Sampled occupancy: each queue's len is read
                        // under its own lock, so the sum never exceeds
                        // shards × capacity.
                        let depth: usize = senders.iter().map(|tx| tx.len()).sum();
                        peak_depth.fetch_max(depth, Ordering::Relaxed);
                        telemetry::gauge_set("engine_queue_depth", &[], depth as f64);
                        break;
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        unreachable!("receivers live until the scope joins")
                    }
                    Err(TrySendError::Full(_)) => {
                        if backpressure == Backpressure::Fail {
                            // Typed rejection: release the workers (they
                            // drain what is queued and exit) and report
                            // which task hit the wall.
                            shared.done.store(true, Ordering::Release);
                            return Err(QueueFull {
                                index: i,
                                shard,
                                capacity: senders[shard].capacity(),
                            });
                        }
                        if shared.alive.load(Ordering::Relaxed) == 0 {
                            // Every worker is dead; the submitter is the
                            // only thread left. Run inline rather than
                            // spin on a queue nobody will drain.
                            run_inline(i);
                            inline_runs.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        // Backpressure: wait for a worker to drain the
                        // shard, then retry. Occupancy stays bounded.
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            }
        }
        shared.done.store(true, Ordering::Release);
        Ok(())
    })
    .expect("scheduler workers never panic (tasks are trapped)");

    // Recovery pass: any index that never executed (a kill orphaned it
    // with no surviving worker to rescue it) runs here, inline, so the
    // zero-lost-task guarantee is unconditional.
    let mut rescued = 0u64;
    if submitted.is_ok() {
        let missing: Vec<usize> = {
            let slots = shared.results.lock().expect("results lock never poisoned");
            (0..n).filter(|&i| slots[i].is_none()).collect()
        };
        for i in missing {
            run_inline(i);
            rescued += 1;
        }
        if rescued > 0 {
            telemetry::counter_add("engine_tasks_rescued_total", &[], rescued);
        }
    }
    telemetry::gauge_set("engine_queue_depth", &[], 0.0);

    let stats = RunStats {
        steals: shared.steals.load(Ordering::Relaxed),
        peak_queue_depth: peak_depth.load(Ordering::Relaxed),
        worker_deaths: shared.deaths.load(Ordering::Relaxed),
        requeued: shared.requeued.load(Ordering::Relaxed),
        rescued,
        inline_runs: inline_runs.load(Ordering::Relaxed),
        callback_panics: 0,
    };
    submitted?;
    let results = shared
        .results
        .into_inner()
        .expect("results lock never poisoned")
        .into_iter()
        .map(|slot| slot.expect("every task index executed exactly once"))
        .collect();
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn double(n: usize, workers: usize, shards: usize, cap: usize) -> (Vec<usize>, RunStats) {
        run_sharded(n, workers, shards, cap, None, Backpressure::Block, |i| i as u64, |i, _| i * 2)
            .expect("blocking submission never fails")
    }

    #[test]
    fn results_in_task_order_for_any_geometry() {
        for (workers, shards, cap) in [(1, 1, 1), (2, 2, 2), (4, 2, 3), (8, 8, 32), (3, 7, 1)] {
            let (out, stats) = double(100, workers, shards, cap);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            assert!(stats.peak_queue_depth <= shards.min(100) * cap.max(1));
        }
    }

    #[test]
    fn zero_tasks_spawns_nothing() {
        let (out, stats) = double(0, 4, 4, 8);
        assert!(out.is_empty());
        assert_eq!(stats, RunStats::default());
    }

    #[test]
    fn each_task_executes_exactly_once() {
        let counts: Vec<AtomicU64> = (0..200).map(|_| AtomicU64::new(0)).collect();
        let (out, _) = run_sharded(
            200,
            4,
            4,
            4,
            None,
            Backpressure::Block,
            |i| (i / 10) as u64,
            |i, _| counts[i].fetch_add(1, Ordering::Relaxed),
        )
        .expect("blocking submission never fails");
        assert_eq!(out.len(), 200);
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} must run exactly once");
        }
    }

    #[test]
    fn queue_full_is_typed_under_fail_backpressure() {
        // One shard of capacity 1, and a worker stalled by chaos on the
        // first task: the submitter fills the queue and must get the
        // typed rejection instead of blocking.
        let chaos = ChaosSchedule::scripted([(0, ChaosEvent::StallMs(50))]);
        let err = run_sharded(16, 1, 1, 1, Some(&chaos), Backpressure::Fail, |_| 0, |i, _| i)
            .expect_err("the queue must fill while the worker stalls");
        assert_eq!(err.shard, 0);
        assert_eq!(err.capacity, 1);
        assert!(err.index >= 1, "task 0 was dequeued before the stall: {err:?}");
        assert!(err.to_string().contains("queue full"));
    }

    #[test]
    fn kill_schedule_loses_no_tasks() {
        // Schedule more kills than workers: the survivors plus the
        // inline submitter plus the recovery pass still run everything.
        let chaos = ChaosSchedule::scripted((0..6).map(|k| (k * 7, ChaosEvent::Kill)));
        let (out, stats) =
            run_sharded(50, 2, 2, 2, Some(&chaos), Backpressure::Block, |i| i as u64, |i, _| i + 1)
                .expect("blocking submission never fails");
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
        assert!(stats.worker_deaths <= 2, "only 2 workers existed to kill");
        assert!(stats.worker_deaths >= 1, "the first kill event always fires");
        assert_eq!(stats.requeued, stats.worker_deaths);
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let a = ChaosSchedule::seeded(42, 500, 20);
        let b = ChaosSchedule::seeded(42, 500, 20);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for i in 0..500 {
            assert_eq!(a.take(i), b.take(i), "event at {i}");
        }
        let c = ChaosSchedule::seeded(43, 500, 20);
        let diverges = (0..500).any(|i| ChaosSchedule::seeded(42, 500, 20).take(i) != c.take(i));
        assert!(diverges, "different seeds must give different schedules");
    }

    #[test]
    fn chaos_events_fire_once() {
        let chaos = ChaosSchedule::scripted([(3, ChaosEvent::Kill)]);
        assert_eq!(chaos.take(3), Some(ChaosEvent::Kill));
        assert_eq!(chaos.take(3), None, "one-shot: a requeued task is not re-killed");
        assert_eq!(chaos.take(4), None);
    }
}
