//! # evalcore — the evaluation pipeline
//!
//! Implements the paper's Algorithm 1 ([`scenario`]), the full evaluation
//! grid over compressors × error bounds × models × datasets ([`grid`]),
//! the shared transform/dataset caches behind it ([`cache`]), result
//! bookkeeping ([`results`]) and the per-table/figure experiment
//! reproductions ([`experiments`]).

pub mod advisor;
pub mod cache;
pub mod experiments;
pub mod grid;
pub mod results;
pub mod scenario;

pub use advisor::{CompressionAdvisor, Recommendation};
pub use cache::{GridContext, Subset, TransformCache, TransformKey};
pub use grid::{run_compression_grid, run_forecast_grid, run_retrain_grid, GridConfig};
pub use results::{CompressionRecord, ForecastRecord};
pub use scenario::{evaluate_scenario, retrain_scenario, transform_series, ScenarioOutcome};
