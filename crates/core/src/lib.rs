//! # evalcore — the evaluation pipeline
//!
//! Implements the paper's Algorithm 1 ([`scenario`]), the task engine
//! that schedules the evaluation cross-product with per-task fault
//! isolation ([`engine`]), the grid entry points over compressors ×
//! error bounds × models × datasets ([`grid`]), the shared
//! transform/dataset caches behind them ([`cache`]), the versioned
//! model-artifact format and checkpoint store behind `--resume`
//! ([`artifact`]), result bookkeeping including partial-failure
//! summaries ([`results`]) and the per-table/figure experiment
//! reproductions ([`experiments`]). Store-backed runs route every
//! transform through the chunked store ([`storeback`], DESIGN.md §12).
//! The engine schedules onto a sharded work-stealing pool with bounded
//! queues and deterministic chaos injection ([`sched`], DESIGN.md §15).

pub mod advisor;
pub mod artifact;
pub mod cache;
pub mod engine;
pub mod experiments;
pub mod grid;
pub mod results;
pub mod scenario;
pub mod sched;
pub mod storeback;

pub use advisor::{CompressionAdvisor, Recommendation};
pub use artifact::{decode_state, encode_state, ArtifactError, ArtifactKey, ArtifactStore};
pub use cache::{GridContext, Subset, TransformCache, TransformKey};
pub use engine::{
    CancelFlag, CompressionTask, Engine, ForecastTask, GorillaTask, GridReport, GridTask,
    RetrainTask, TaskCoord, TaskEvent, TaskOutcome, TaskStatus,
};
pub use grid::{run_compression_grid, run_forecast_grid, run_retrain_grid, GridConfig};
pub use results::{failure_summary, CompressionRecord, ForecastRecord, TaskFailure};
pub use scenario::{evaluate_scenario, retrain_scenario, transform_series, ScenarioOutcome};
pub use sched::{Backpressure, ChaosEvent, ChaosSchedule, QueueFull, RunStats};
pub use storeback::StoreBackend;
