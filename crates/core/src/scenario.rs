//! Algorithm 1 — the paper's evaluation procedure.
//!
//! A forecasting model is trained once on the *raw* training subset; the
//! *test* subset is lossy-compressed and decompressed (`T(test | C, ε)`),
//! and the model predicts from the transformed inputs while being scored
//! against the raw targets. The transformation forecasting error (TFE)
//! compares those scores to the raw-input baseline.
//!
//! The alternative scenario of §4.4.1 — retraining on decompressed data —
//! is implemented by [`retrain_scenario`].

use std::sync::Arc;

use compression::codec::PeblcCompressor;
use forecast::model::{ForecastError, Forecaster};
use tsdata::metrics::{metric_set, MetricSet};
use tsdata::scaler::StandardScaler;
use tsdata::series::{MultiSeries, SeriesError};
use tsdata::split::{make_eval_windows, make_windows, Window};

use crate::cache::Subset;

/// Supplies the transformed version of one subset for a `(method, ε)`
/// pair. The grid runners back this with the shared
/// [`TransformCache`](crate::cache::TransformCache); the plain scenario
/// entry points back it with a direct [`transform_series`] call.
pub type TransformProvider<'a> =
    dyn FnMut(Subset, &dyn PeblcCompressor, f64) -> Result<Arc<MultiSeries>, ScenarioError> + 'a;

/// Errors from running the scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// Model fitting or prediction failed.
    Forecast(ForecastError),
    /// Compression or decompression failed.
    Codec(compression::CodecError),
    /// Series manipulation failed.
    Series(SeriesError),
    /// The chunked store rejected an ingest or read (store-backed runs).
    Store(store::StoreError),
    /// The test subset yields no evaluation windows.
    NoWindows,
    /// A task referenced a method absent from the grid configuration.
    UnknownMethod(&'static str),
    /// The task was skipped because the engine's cancel flag was set.
    Cancelled,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Forecast(e) => write!(f, "forecasting: {e}"),
            ScenarioError::Codec(e) => write!(f, "compression: {e}"),
            ScenarioError::Series(e) => write!(f, "series: {e}"),
            ScenarioError::Store(e) => write!(f, "store: {e}"),
            ScenarioError::NoWindows => write!(f, "no evaluation windows in test subset"),
            ScenarioError::UnknownMethod(name) => {
                write!(f, "method {name} is not in the grid configuration")
            }
            ScenarioError::Cancelled => write!(f, "task cancelled before it started"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ForecastError> for ScenarioError {
    fn from(e: ForecastError) -> Self {
        ScenarioError::Forecast(e)
    }
}

impl From<compression::CodecError> for ScenarioError {
    fn from(e: compression::CodecError) -> Self {
        ScenarioError::Codec(e)
    }
}

impl From<SeriesError> for ScenarioError {
    fn from(e: SeriesError) -> Self {
        ScenarioError::Series(e)
    }
}

impl From<store::StoreError> for ScenarioError {
    fn from(e: store::StoreError) -> Self {
        ScenarioError::Store(e)
    }
}

/// Applies the transformation `T` to every channel of a series,
/// short-circuiting on the first codec error (a failed channel poisons
/// the whole series, so transforming the rest would be wasted work).
pub fn transform_series(
    data: &MultiSeries,
    compressor: &dyn PeblcCompressor,
    epsilon: f64,
) -> Result<MultiSeries, ScenarioError> {
    data.try_map_channels(|c| {
        compressor.transform(c, epsilon).map(|(d, _)| d).map_err(ScenarioError::from)
    })
}

/// Scores a fitted model on evaluation windows. Metrics are computed in
/// *scaled* units (the train-fitted standard scaler applied to both
/// predictions and raw targets), matching the magnitudes of the paper's
/// Table 2.
///
/// `batch_size` controls inference staging: `0` keeps the legacy
/// per-window [`Forecaster::predict`] loop (the reference oracle); `>= 1`
/// stages target-channel windows into `[batch, input_len]` matrices and
/// calls [`Forecaster::predict_batch`] per chunk. Every in-tree model's
/// batched rows are bitwise equal to its per-window predictions, and the
/// metric accumulation visits windows in the same order on both paths, so
/// the resulting metrics (and any CSV derived from them) are identical.
pub fn score_windows(
    model: &dyn Forecaster,
    windows: &[Window],
    scaler: &StandardScaler,
    batch_size: usize,
) -> Result<MetricSet, ScenarioError> {
    if windows.is_empty() {
        return Err(ScenarioError::NoWindows);
    }
    let label = [("model", model.name())];
    let h = model.horizon();
    let mut all_pred = Vec::with_capacity(windows.len() * h);
    let mut all_truth = Vec::with_capacity(windows.len() * h);
    if batch_size == 0 {
        let start = std::time::Instant::now();
        for w in windows {
            let pred = model.predict(&w.inputs)?;
            all_pred.extend(scaler.transform(0, &pred));
            all_truth.extend(scaler.transform(0, &w.target));
        }
        telemetry::observe("predict_batch_seconds", &label, telemetry::secs(start.elapsed()));
    } else {
        for chunk in windows.chunks(batch_size) {
            let staged = forecast::batch::stage_windows(chunk, model.input_len());
            let start = std::time::Instant::now();
            let preds = model.predict_batch(&staged)?;
            telemetry::observe("predict_batch_seconds", &label, telemetry::secs(start.elapsed()));
            for (r, w) in chunk.iter().enumerate() {
                all_pred.extend(scaler.transform(0, &preds.data()[r * h..(r + 1) * h]));
                all_truth.extend(scaler.transform(0, &w.target));
            }
        }
    }
    telemetry::counter_add("predict_windows_total", &label, windows.len() as u64);
    Ok(metric_set(&all_truth, &all_pred))
}

/// One evaluated configuration: baseline plus per-(method, ε) scores.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scores on the raw test subset (the Table-2 baseline).
    pub baseline: MetricSet,
    /// Scores on transformed test subsets, in the order evaluated:
    /// `(method_name, epsilon, metrics)`.
    pub transformed: Vec<(&'static str, f64, MetricSet)>,
}

/// Runs Algorithm 1 for one fitted model: evaluates the raw baseline and
/// every `(compressor, ε)` combination on the test subset.
///
/// `eval_stride` subsamples test windows (1 = every window, as in the
/// paper; larger = faster). `batch_size` stages inference as in
/// [`score_windows`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_scenario(
    model: &mut dyn Forecaster,
    train: &MultiSeries,
    val: &MultiSeries,
    test: &MultiSeries,
    compressors: &[Box<dyn PeblcCompressor>],
    error_bounds: &[f64],
    eval_stride: usize,
    batch_size: usize,
) -> Result<ScenarioOutcome, ScenarioError> {
    let mut direct =
        |_: Subset, c: &dyn PeblcCompressor, eps: f64| transform_series(test, c, eps).map(Arc::new);
    evaluate_scenario_with(
        model,
        train,
        val,
        test,
        compressors,
        error_bounds,
        eval_stride,
        batch_size,
        &mut direct,
    )
}

/// [`evaluate_scenario`] with the transform step delegated to `transform`
/// (only [`Subset::Test`] is requested). Grid runners pass a provider
/// backed by the shared cache so that each `(dataset, method, ε)`
/// transform runs once across all `(model, seed)` tasks.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_scenario_with(
    model: &mut dyn Forecaster,
    train: &MultiSeries,
    val: &MultiSeries,
    test: &MultiSeries,
    compressors: &[Box<dyn PeblcCompressor>],
    error_bounds: &[f64],
    eval_stride: usize,
    batch_size: usize,
    transform: &mut TransformProvider<'_>,
) -> Result<ScenarioOutcome, ScenarioError> {
    model.fit(train, val)?;
    score_scenario_with(
        &*model,
        train,
        test,
        compressors,
        error_bounds,
        eval_stride,
        batch_size,
        transform,
    )
}

/// The scoring half of Algorithm 1: evaluates an **already fitted** model
/// on the raw baseline and every `(compressor, ε)` combination. The
/// engine's load-or-fit path calls this directly after restoring a model
/// from the artifact store, skipping the fit entirely.
#[allow(clippy::too_many_arguments)]
pub fn score_scenario_with(
    model: &dyn Forecaster,
    train: &MultiSeries,
    test: &MultiSeries,
    compressors: &[Box<dyn PeblcCompressor>],
    error_bounds: &[f64],
    eval_stride: usize,
    batch_size: usize,
    transform: &mut TransformProvider<'_>,
) -> Result<ScenarioOutcome, ScenarioError> {
    let scaler = StandardScaler::fit_single(train.target().values());
    let raw_windows = make_windows(test, model.input_len(), model.horizon(), eval_stride);
    if raw_windows.is_empty() {
        return Err(ScenarioError::NoWindows);
    }
    let baseline = score_windows(model, &raw_windows, &scaler, batch_size)?;

    let mut transformed = Vec::new();
    for compressor in compressors {
        for &eps in error_bounds {
            let t_test = transform(Subset::Test, compressor.as_ref(), eps)?;
            let metrics =
                score_transformed(model, test, &t_test, &scaler, eval_stride, batch_size)?;
            transformed.push((compressor.name(), eps, metrics));
        }
    }
    Ok(ScenarioOutcome { baseline, transformed })
}

/// Scores a fitted model on one transformed test subset (inputs from
/// `t_test`, targets from the raw `test`), in scaled units.
pub fn score_transformed(
    model: &dyn Forecaster,
    test: &MultiSeries,
    t_test: &MultiSeries,
    scaler: &StandardScaler,
    eval_stride: usize,
    batch_size: usize,
) -> Result<MetricSet, ScenarioError> {
    let windows = make_eval_windows(test, t_test, model.input_len(), model.horizon(), eval_stride)?;
    score_windows(model, &windows, scaler, batch_size)
}

/// The §4.4.1 variant: train *and* infer on decompressed data, scoring
/// against the raw targets. Returns `(method, ε, metrics)` per
/// combination, plus the raw-trained baseline for TFE computation.
#[allow(clippy::too_many_arguments)]
pub fn retrain_scenario(
    make_model: &mut dyn FnMut() -> Box<dyn Forecaster>,
    train: &MultiSeries,
    val: &MultiSeries,
    test: &MultiSeries,
    compressors: &[Box<dyn PeblcCompressor>],
    error_bounds: &[f64],
    eval_stride: usize,
    batch_size: usize,
) -> Result<ScenarioOutcome, ScenarioError> {
    let mut direct = |subset: Subset, c: &dyn PeblcCompressor, eps: f64| {
        let data = match subset {
            Subset::Train => train,
            Subset::Val => val,
            _ => test,
        };
        transform_series(data, c, eps).map(Arc::new)
    };
    retrain_scenario_with(
        make_model,
        train,
        val,
        test,
        compressors,
        error_bounds,
        eval_stride,
        batch_size,
        &mut direct,
    )
}

/// [`retrain_scenario`] with the transform step delegated to `transform`
/// (requested for [`Subset::Train`], [`Subset::Val`], and
/// [`Subset::Test`]).
#[allow(clippy::too_many_arguments)]
pub fn retrain_scenario_with(
    make_model: &mut dyn FnMut() -> Box<dyn Forecaster>,
    train: &MultiSeries,
    val: &MultiSeries,
    test: &MultiSeries,
    compressors: &[Box<dyn PeblcCompressor>],
    error_bounds: &[f64],
    eval_stride: usize,
    batch_size: usize,
    transform: &mut TransformProvider<'_>,
) -> Result<ScenarioOutcome, ScenarioError> {
    // Baseline: raw-trained model on raw test data.
    let mut base_model = make_model();
    base_model.fit(train, val)?;
    let scaler = StandardScaler::fit_single(train.target().values());
    let raw_windows = make_windows(test, base_model.input_len(), base_model.horizon(), eval_stride);
    if raw_windows.is_empty() {
        return Err(ScenarioError::NoWindows);
    }
    let baseline = score_windows(base_model.as_ref(), &raw_windows, &scaler, batch_size)?;

    let mut transformed = Vec::new();
    for compressor in compressors {
        for &eps in error_bounds {
            let t_train = transform(Subset::Train, compressor.as_ref(), eps)?;
            let t_val = transform(Subset::Val, compressor.as_ref(), eps)?;
            let t_test = transform(Subset::Test, compressor.as_ref(), eps)?;
            let mut model = make_model();
            model.fit(&t_train, &t_val)?;
            let windows =
                make_eval_windows(test, &t_test, model.input_len(), model.horizon(), eval_stride)?;
            let metrics = score_windows(model.as_ref(), &windows, &scaler, batch_size)?;
            transformed.push((compressor.name(), eps, metrics));
        }
    }
    Ok(ScenarioOutcome { baseline, transformed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use compression::{Pmc, Sz};
    use forecast::{build_model, BuildOptions, ModelKind};
    use tsdata::series::RegularTimeSeries;
    use tsdata::split::{split, SplitSpec};

    fn dataset(n: usize) -> MultiSeries {
        let vals: Vec<f64> = (0..n)
            .map(|i| {
                10.0 + 3.0 * (i as f64 / 24.0 * std::f64::consts::TAU).sin()
                    + ((i * 13) % 7) as f64 * 0.05
            })
            .collect();
        MultiSeries::univariate("y", RegularTimeSeries::new(0, 3600, vals).unwrap())
    }

    #[test]
    fn transform_series_respects_bound() {
        let data = dataset(500);
        let t = transform_series(&data, &Pmc, 0.1).unwrap();
        assert_eq!(t.len(), data.len());
        assert!(compression::find_bound_violation(
            data.target().values(),
            t.target().values(),
            0.1,
            1e-9
        )
        .is_none());
    }

    #[test]
    fn evaluate_scenario_end_to_end() {
        let data = dataset(1500);
        let s = split(&data, SplitSpec::default()).unwrap();
        let mut model = build_model(
            ModelKind::GBoost,
            BuildOptions { input_len: 48, horizon: 12, ..Default::default() },
        );
        let compressors: Vec<Box<dyn PeblcCompressor>> = vec![Box::new(Pmc), Box::new(Sz)];
        let outcome = evaluate_scenario(
            model.as_mut(),
            &s.train,
            &s.val,
            &s.test,
            &compressors,
            &[0.01, 0.3],
            4,
            64,
        )
        .unwrap();
        assert_eq!(outcome.transformed.len(), 4);
        // Baseline on this clean seasonal series must be decent.
        assert!(outcome.baseline.rmse < 0.6, "baseline rmse {}", outcome.baseline.rmse);
        // Tiny error bound barely changes accuracy; huge one changes it more.
        let small = outcome.transformed[0].2.rmse;
        let large = outcome.transformed[1].2.rmse;
        let tfe_small = tsdata::metrics::tfe(outcome.baseline.rmse, small);
        let tfe_large = tsdata::metrics::tfe(outcome.baseline.rmse, large);
        assert!(tfe_small.abs() < 0.5, "tfe at eps 0.01: {tfe_small}");
        assert!(tfe_large >= tfe_small - 0.05, "{tfe_large} vs {tfe_small}");
    }

    #[test]
    fn retrain_scenario_runs() {
        let data = dataset(1200);
        let s = split(&data, SplitSpec::default()).unwrap();
        let compressors: Vec<Box<dyn PeblcCompressor>> = vec![Box::new(Pmc)];
        let mut make = || {
            build_model(
                ModelKind::DLinear,
                BuildOptions { input_len: 48, horizon: 12, ..Default::default() },
            )
        };
        let outcome =
            retrain_scenario(&mut make, &s.train, &s.val, &s.test, &compressors, &[0.1], 6, 32)
                .unwrap();
        assert_eq!(outcome.transformed.len(), 1);
        assert!(outcome.transformed[0].2.rmse.is_finite());
    }

    #[test]
    fn no_windows_error() {
        let data = dataset(300);
        let s = split(&data, SplitSpec::default()).unwrap();
        let mut model = build_model(
            ModelKind::GBoost,
            BuildOptions { input_len: 96, horizon: 24, ..Default::default() },
        );
        // test subset has 60 points < 96 + 24 -> no windows
        let res = evaluate_scenario(model.as_mut(), &s.train, &s.val, &s.test, &[], &[], 1, 64);
        assert!(matches!(res, Err(ScenarioError::NoWindows) | Err(ScenarioError::Forecast(_))));
    }

    #[test]
    fn score_windows_empty_is_no_windows_on_both_paths() {
        let data = dataset(1200);
        let s = split(&data, SplitSpec::default()).unwrap();
        let mut model = build_model(
            ModelKind::GBoost,
            BuildOptions { input_len: 48, horizon: 12, ..Default::default() },
        );
        model.fit(&s.train, &s.val).unwrap();
        let scaler = StandardScaler::fit_single(s.train.target().values());
        for batch_size in [0, 1, 64] {
            let res = score_windows(model.as_ref(), &[], &scaler, batch_size);
            assert!(matches!(res, Err(ScenarioError::NoWindows)), "batch_size {batch_size}");
        }
    }

    #[test]
    fn batched_scoring_matches_legacy_exactly() {
        let data = dataset(1500);
        let s = split(&data, SplitSpec::default()).unwrap();
        let mut model = build_model(
            ModelKind::DLinear,
            BuildOptions { input_len: 48, horizon: 12, ..Default::default() },
        );
        model.fit(&s.train, &s.val).unwrap();
        let scaler = StandardScaler::fit_single(s.train.target().values());
        // Strides > 1 and strides that leave ragged final chunks both have
        // to reproduce the per-window metrics bit for bit.
        for eval_stride in [1, 5] {
            let windows = make_windows(&s.test, 48, 12, eval_stride);
            assert!(!windows.is_empty());
            let legacy = score_windows(model.as_ref(), &windows, &scaler, 0).unwrap();
            for batch_size in [1, 7, 64, windows.len() + 10] {
                let batched = score_windows(model.as_ref(), &windows, &scaler, batch_size).unwrap();
                assert_eq!(
                    legacy.rmse.to_bits(),
                    batched.rmse.to_bits(),
                    "rmse diverged at stride {eval_stride} batch {batch_size}"
                );
                assert_eq!(legacy.r.to_bits(), batched.r.to_bits());
                assert_eq!(legacy.rse.to_bits(), batched.rse.to_bits());
                assert_eq!(legacy.nrmse.to_bits(), batched.nrmse.to_bits());
            }
        }
    }

    #[test]
    fn window_count_not_divisible_by_batch_size() {
        let data = dataset(1500);
        let s = split(&data, SplitSpec::default()).unwrap();
        let mut model = build_model(
            ModelKind::GBoost,
            BuildOptions { input_len: 48, horizon: 12, ..Default::default() },
        );
        model.fit(&s.train, &s.val).unwrap();
        let scaler = StandardScaler::fit_single(s.train.target().values());
        let windows = make_windows(&s.test, 48, 12, 3);
        // Pick a batch size that guarantees a ragged final chunk.
        let batch_size = windows.len() / 2 + 1;
        assert!(!windows.len().is_multiple_of(batch_size));
        let legacy = score_windows(model.as_ref(), &windows, &scaler, 0).unwrap();
        let batched = score_windows(model.as_ref(), &windows, &scaler, batch_size).unwrap();
        assert_eq!(legacy.rmse.to_bits(), batched.rmse.to_bits());
    }
}
