//! Result records, aggregation and CSV emission for the evaluation grid,
//! plus the structured failure bookkeeping that lets a partial grid
//! (some tasks failed or panicked) still produce a report.

use compression::Method;
use forecast::model::ModelKind;
use tsdata::datasets::DatasetKind;
use tsdata::metrics::MetricSet;

use crate::engine::TaskCoord;

/// Compression-side measurements for one `(dataset, method, ε)` cell
/// (Figures 2–3, Table 3 inputs).
#[derive(Debug, Clone, Copy)]
pub struct CompressionRecord {
    /// Dataset.
    pub dataset: DatasetKind,
    /// Lossy method.
    pub method: Method,
    /// Relative pointwise error bound.
    pub epsilon: f64,
    /// Transformation error as NRMSE (Figure 2's TE axis).
    pub te_nrmse: f64,
    /// Transformation error as RMSE.
    pub te_rmse: f64,
    /// Compression ratio (Eq. 3, gzip-relative sizes).
    pub cr: f64,
    /// Segment count (Figure 3).
    pub segments: usize,
}

/// Forecasting-side measurements for one `(dataset, model, method, ε,
/// seed)` cell. `method = None` marks the raw baseline.
#[derive(Debug, Clone, Copy)]
pub struct ForecastRecord {
    /// Dataset.
    pub dataset: DatasetKind,
    /// Forecasting model.
    pub model: ModelKind,
    /// Lossy method (`None` = raw baseline).
    pub method: Option<Method>,
    /// Error bound (0 for the baseline).
    pub epsilon: f64,
    /// Random seed of this run.
    pub seed: u64,
    /// Accuracy metrics (scaled units).
    pub metrics: MetricSet,
}

/// One failed or panicked grid task: the coordinate it covered plus the
/// rendered error. Collected by the engine's
/// [`GridReport`](crate::engine::GridReport) in task order.
#[derive(Debug, Clone)]
pub struct TaskFailure {
    /// Grid coordinates of the failed task.
    pub coord: TaskCoord,
    /// Rendered error (or panic message).
    pub error: String,
    /// Whether the task panicked (vs returning an error).
    pub panicked: bool,
}

/// Maximum per-coordinate lines a failure summary prints before eliding.
const SUMMARY_MAX_LINES: usize = 8;

/// Renders a failure summary — the total count (split into failed vs
/// panicked) plus the first error per coordinate — or `None` when every
/// task succeeded. Coordinates appear in task order, capped at
/// `SUMMARY_MAX_LINES` lines.
pub fn failure_summary(failures: &[TaskFailure]) -> Option<String> {
    if failures.is_empty() {
        return None;
    }
    let panicked = failures.iter().filter(|f| f.panicked).count();
    let mut out = format!(
        "{} task(s) did not complete ({} failed, {panicked} panicked); \
         affected coordinates keep their remaining grid cells:",
        failures.len(),
        failures.len() - panicked,
    );
    let mut seen: Vec<String> = Vec::new();
    for f in failures {
        let coord = f.coord.to_string();
        if seen.contains(&coord) {
            continue;
        }
        if seen.len() == SUMMARY_MAX_LINES {
            out.push_str(&format!("\n  ... and {} more", failures.len() - seen.len()));
            break;
        }
        out.push_str(&format!(
            "\n  {coord}: {}{}",
            if f.panicked { "panicked: " } else { "" },
            f.error
        ));
        seen.push(coord);
    }
    Some(out)
}

/// Mean of a slice; NaN-free inputs assumed. Returns 0.0 when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median of a slice (average of middle two for even lengths).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Half-width of a normal-approximation 95% confidence interval.
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64;
    1.96 * (var / n as f64).sqrt()
}

/// Averages forecast metrics over seeds for matching keys.
pub fn average_over_seeds(records: &[ForecastRecord]) -> Vec<ForecastRecord> {
    let mut out: Vec<ForecastRecord> = Vec::new();
    let mut seen: Vec<(DatasetKind, ModelKind, Option<Method>, u64)> = Vec::new();
    for r in records {
        let eps_key = (r.epsilon * 1e6) as u64;
        let key = (r.dataset, r.model, r.method, eps_key);
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let group: Vec<&ForecastRecord> = records
            .iter()
            .filter(|o| {
                o.dataset == r.dataset
                    && o.model == r.model
                    && o.method == r.method
                    && (o.epsilon * 1e6) as u64 == eps_key
            })
            .collect();
        let n = group.len() as f64;
        let metrics = MetricSet {
            r: group.iter().map(|g| g.metrics.r).sum::<f64>() / n,
            rse: group.iter().map(|g| g.metrics.rse).sum::<f64>() / n,
            rmse: group.iter().map(|g| g.metrics.rmse).sum::<f64>() / n,
            nrmse: group.iter().map(|g| g.metrics.nrmse).sum::<f64>() / n,
        };
        out.push(ForecastRecord { seed: 0, metrics, ..*r });
    }
    out
}

/// CSV serialization of compression records.
pub fn compression_csv(records: &[CompressionRecord]) -> String {
    let mut s = String::from("dataset,method,epsilon,te_nrmse,te_rmse,cr,segments\n");
    for r in records {
        s.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            r.dataset.name(),
            r.method.name(),
            r.epsilon,
            r.te_nrmse,
            r.te_rmse,
            r.cr,
            r.segments
        ));
    }
    s
}

/// CSV serialization of forecast records.
pub fn forecast_csv(records: &[ForecastRecord]) -> String {
    let mut s = String::from("dataset,model,method,epsilon,seed,r,rse,rmse,nrmse\n");
    for r in records {
        s.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            r.dataset.name(),
            r.model.name(),
            r.method.map_or("RAW", |m| m.name()),
            r.epsilon,
            r.seed,
            r.metrics.r,
            r.metrics.rse,
            r.metrics.rmse,
            r.metrics.nrmse
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seed: u64, rmse: f64) -> ForecastRecord {
        ForecastRecord {
            dataset: DatasetKind::ETTm1,
            model: ModelKind::Arima,
            method: Some(Method::Pmc),
            epsilon: 0.1,
            seed,
            metrics: MetricSet { r: 0.9, rse: 0.3, rmse, nrmse: rmse / 2.0 },
        }
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(ci95_half_width(&[5.0]), 0.0);
        assert!(ci95_half_width(&[1.0, 2.0, 3.0, 4.0]) > 0.0);
    }

    #[test]
    fn seed_averaging_groups_correctly() {
        let records = vec![rec(1, 0.2), rec(2, 0.4), {
            let mut other = rec(1, 1.0);
            other.epsilon = 0.5;
            other
        }];
        let avg = average_over_seeds(&records);
        assert_eq!(avg.len(), 2);
        let g = avg.iter().find(|r| r.epsilon == 0.1).expect("group exists");
        assert!((g.metrics.rmse - 0.3).abs() < 1e-12);
    }

    #[test]
    fn csv_round_shape() {
        let c = CompressionRecord {
            dataset: DatasetKind::Solar,
            method: Method::Sz,
            epsilon: 0.05,
            te_nrmse: 0.01,
            te_rmse: 0.1,
            cr: 9.5,
            segments: 1234,
        };
        let csv = compression_csv(&[c]);
        assert!(csv.starts_with("dataset,"));
        assert!(csv.contains("Solar,SZ,0.05,"));
        let fcsv = forecast_csv(&[rec(7, 0.25)]);
        assert!(fcsv.contains("ETTm1,Arima,PMC,0.1,7,"));
        assert_eq!(fcsv.lines().count(), 2);
    }
}
