//! The evaluation grid: compressor × error bound × dataset on the
//! compression side, and model × seed × compressor × error bound × dataset
//! on the forecasting side, scheduled through the task engine
//! ([`crate::engine`]) with per-task fault isolation.
//!
//! Every runner has a `*_ctx` variant taking a [`GridContext`], whose
//! caches share dataset generation and `(dataset, subset, method, ε)`
//! transforms across tasks — and across grids, when several runners use
//! the same context. The plain entry points build a fresh context. The
//! `*_ctx` runners log failed tasks and return the surviving records;
//! callers that need the structured failures use [`Engine`] directly.

use std::panic::{catch_unwind, AssertUnwindSafe};

use compression::{Method, ALL_METHODS, ERROR_BOUNDS};
use forecast::model::{ModelKind, ALL_MODELS};
use forecast::{build_model, BuildOptions, Profile};
use tsdata::datasets::{DatasetKind, GenOptions, ALL_DATASETS};
use tsdata::series::MultiSeries;
use tsdata::split::{split, Split, SplitSpec};

use crate::cache::GridContext;
use crate::engine::Engine;
use crate::results::{CompressionRecord, ForecastRecord};
use crate::scenario::ScenarioError;
use crate::sched::{self, Backpressure};

/// Grid configuration. The defaults of [`GridConfig::default_repro`]
/// complete on one laptop-class CPU; [`GridConfig::paper`] matches the
/// paper's scale.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Datasets to evaluate.
    pub datasets: Vec<DatasetKind>,
    /// Dataset length override (`None` = paper lengths).
    pub len: Option<usize>,
    /// Channel override (`None` = reduced defaults).
    pub channels: Option<usize>,
    /// Input window length.
    pub input_len: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Error bounds (paper: the 13 values of §3.2).
    pub error_bounds: Vec<f64>,
    /// Lossy methods.
    pub methods: Vec<Method>,
    /// Forecasting models.
    pub models: Vec<ModelKind>,
    /// Seeds for deep models (paper: 10).
    pub seeds_deep: usize,
    /// Seeds for Arima/GBoost (paper: 5).
    pub seeds_simple: usize,
    /// Stride between test evaluation windows (1 = every window).
    pub eval_stride: usize,
    /// Inference batch size for evaluation scoring: windows are staged
    /// into `[batch_size, input_len]` matrices and predicted through
    /// [`forecast::model::Forecaster::predict_batch`]. `0` selects the
    /// legacy per-window `predict` loop (the reference oracle); both paths
    /// produce identical metrics and CSVs.
    pub batch_size: usize,
    /// Model size profile.
    pub profile: Profile,
    /// Worker threads.
    pub threads: usize,
    /// Scheduler shards (`0` = one shard per worker). Tasks are keyed to
    /// shards by [`crate::engine::TaskCoord::shard_key`]; each shard owns
    /// a bounded queue and idle workers steal across shards. Outcomes are
    /// identical for any value (DESIGN.md §15).
    pub shards: usize,
    /// Seed for a generated chaos schedule (`None` = no fault injection).
    /// When set, every engine run injects deterministic worker kills,
    /// stalls, slow-downs, and callback panics — and must still produce
    /// byte-identical outputs (the CI chaos-smoke job cmp's the CSVs).
    pub chaos_seed: Option<u64>,
    /// Dataset generation seed.
    pub data_seed: u64,
    /// Artifact store directory (`None` = no checkpointing). When set,
    /// fitted models are saved as versioned artifacts and later runs with
    /// the same configuration load them instead of refitting (see
    /// [`crate::artifact`]).
    pub artifacts: Option<std::path::PathBuf>,
    /// Serve every transform from the chunked store (`crates/store`):
    /// subsets are staged as lossless Gorilla chunks once and re-encoded
    /// through the streaming codecs per `(method, ε)`. Produces
    /// byte-identical results to the in-memory path (DESIGN.md §12).
    pub store_backed: bool,
}

impl GridConfig {
    /// Minimal smoke configuration for tests: one small dataset, two
    /// cheap models, three error bounds.
    pub fn smoke() -> Self {
        GridConfig {
            datasets: vec![DatasetKind::ETTm1],
            len: Some(1_600),
            channels: Some(1),
            input_len: 48,
            horizon: 12,
            error_bounds: vec![0.01, 0.1, 0.4],
            methods: ALL_METHODS.to_vec(),
            models: vec![ModelKind::GBoost, ModelKind::DLinear],
            seeds_deep: 1,
            seeds_simple: 1,
            eval_stride: 12,
            batch_size: 64,
            profile: Profile::Fast,
            threads: num_threads(),
            shards: 0,
            chaos_seed: None,
            data_seed: 0x5EED,
            artifacts: None,
            store_backed: false,
        }
    }

    /// Laptop-scale defaults covering the full method/model/dataset grid
    /// on shortened series.
    pub fn default_repro() -> Self {
        GridConfig {
            datasets: ALL_DATASETS.to_vec(),
            len: Some(6_000),
            channels: None,
            input_len: 96,
            horizon: 24,
            error_bounds: ERROR_BOUNDS.to_vec(),
            methods: ALL_METHODS.to_vec(),
            models: ALL_MODELS.to_vec(),
            seeds_deep: 2,
            seeds_simple: 1,
            eval_stride: 24,
            batch_size: 64,
            profile: Profile::Fast,
            threads: num_threads(),
            shards: 0,
            chaos_seed: None,
            data_seed: 0x5EED,
            artifacts: None,
            store_backed: false,
        }
    }

    /// Paper-scale configuration: full dataset lengths, the paper's 10/5
    /// seed counts, and paper-profile model sizes. Test windows use
    /// stride 4 rather than the paper's every-window protocol to keep the
    /// run in CPU-hours territory (set `eval_stride = 1` to match the
    /// paper exactly; the aggregate metrics are insensitive to the
    /// stride because windows overlap heavily).
    pub fn paper() -> Self {
        GridConfig {
            datasets: ALL_DATASETS.to_vec(),
            len: None,
            channels: None,
            input_len: 96,
            horizon: 24,
            error_bounds: ERROR_BOUNDS.to_vec(),
            methods: ALL_METHODS.to_vec(),
            models: ALL_MODELS.to_vec(),
            seeds_deep: 10,
            seeds_simple: 5,
            eval_stride: 4,
            batch_size: 64,
            profile: Profile::Paper,
            threads: num_threads(),
            shards: 0,
            chaos_seed: None,
            data_seed: 0x5EED,
            artifacts: None,
            store_backed: false,
        }
    }

    fn gen_options(&self) -> GenOptions {
        GenOptions { len: self.len, channels: self.channels, seed: self.data_seed }
    }

    /// Generates a dataset under this grid's options.
    pub fn dataset(&self, kind: DatasetKind) -> MultiSeries {
        tsdata::datasets::generate(kind, self.gen_options())
    }

    /// Splits a dataset with the paper's 70/10/20 proportions. A series
    /// too short to split is an error the engine records as a per-task
    /// failure, not a panic.
    pub fn split(&self, data: &MultiSeries) -> Result<Split, ScenarioError> {
        Ok(split(data, SplitSpec::default())?)
    }

    /// Seeds used for a given model kind.
    pub fn seeds_for(&self, model: ModelKind) -> Vec<u64> {
        let n = if model.is_deep() { self.seeds_deep } else { self.seeds_simple };
        (0..n as u64).map(|s| 40 + s).collect()
    }

    /// Model builder for one grid task.
    pub(crate) fn build_task_model(
        &self,
        dataset: DatasetKind,
        kind: ModelKind,
        seed: u64,
    ) -> Box<dyn forecast::model::Forecaster> {
        let season = dataset.samples_per_day() as usize;
        build_model(
            kind,
            BuildOptions {
                input_len: self.input_len,
                horizon: self.horizon,
                season: (season >= 2).then_some(season),
                seed,
                profile: self.profile,
            },
        )
    }

    /// The artifact-store address of one fitted model under this
    /// configuration. `method`/`epsilon` describe the lossy transform of
    /// the *training* data (`None` = trained on raw data).
    pub(crate) fn artifact_key(
        &self,
        dataset: DatasetKind,
        model: ModelKind,
        seed: u64,
        method: Option<Method>,
        epsilon: Option<f64>,
    ) -> crate::artifact::ArtifactKey {
        crate::artifact::ArtifactKey {
            dataset: dataset.name().to_string(),
            model: model.name().to_string(),
            seed,
            profile: format!("{:?}", self.profile),
            method: method.map(|m| m.name().to_string()),
            eps_bits: epsilon.map(f64::to_bits),
            input_len: self.input_len,
            horizon: self.horizon,
            len: self.len,
            channels: self.channels,
            data_seed: self.data_seed,
        }
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(1, 16)
}

/// Runs `num_tasks` closures on the sharded work-stealing pool
/// ([`crate::sched`]), collecting outputs in task order. Indices flow
/// through bounded per-shard queues (round-robin by index), so
/// submission is backpressured and peak queued work stays bounded.
///
/// This is the untyped helper for callers without [`crate::engine::GridTask`]
/// descriptors (the figure/table sweeps); new grid code should go
/// through [`Engine`], which reports structured per-task outcomes. Each
/// closure runs under its own `catch_unwind`, so a panicking task no
/// longer kills a worker: exactly the panicking indices are dropped
/// (reported on stderr and in `run_parallel_lost_tasks_total`), every
/// other result survives, and the returned vector stays in task order
/// but may be shorter than `num_tasks`.
pub fn run_parallel<T, F>(num_tasks: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let (slots, _stats) = sched::run_sharded(
        num_tasks,
        threads,
        threads, // one shard per worker
        sched::DEFAULT_QUEUE_CAPACITY,
        None,
        Backpressure::Block,
        |i| i as u64,
        |i, _| catch_unwind(AssertUnwindSafe(|| task(i))).ok(),
    )
    .expect("blocking backpressure never rejects a task");
    let lost: Vec<usize> =
        slots.iter().enumerate().filter(|(_, s)| s.is_none()).map(|(i, _)| i).collect();
    if !lost.is_empty() {
        telemetry::counter_add("run_parallel_lost_tasks_total", &[], lost.len() as u64);
        eprintln!(
            "run_parallel: {} of {num_tasks} task(s) panicked; dropped indices {lost:?}",
            lost.len()
        );
    }
    slots.into_iter().flatten().collect()
}

/// Measures TE, CR and segment counts for every `(dataset, method, ε)`
/// cell (Figure 2, Figure 3, Table 3 inputs). Operates on the target
/// channel, as the paper's TE analysis does.
pub fn run_compression_grid(config: &GridConfig) -> Vec<CompressionRecord> {
    run_compression_grid_ctx(&GridContext::new(config.clone()))
}

/// [`run_compression_grid`] against a shared [`GridContext`]: datasets and
/// full-series transforms are pulled from (and left in) the context's
/// caches. Failed cells are logged and skipped.
pub fn run_compression_grid_ctx(ctx: &GridContext) -> Vec<CompressionRecord> {
    Engine::new(ctx).compression_report().into_records_logged("compression grid")
}

/// Gorilla's lossless CR per dataset (the Figure-2 baseline).
///
/// Gorilla is a storage *encoding* (the TSMS default, §3.3), so its ratio
/// is measured against the raw binary representation — the convention of
/// the Gorilla paper itself. The lossy methods' CRs (Eq. 3) remain
/// gzip-relative; EXPERIMENTS.md discusses the one place the two
/// conventions meet (the Figure-2 baseline line).
pub fn gorilla_crs(config: &GridConfig) -> Vec<(DatasetKind, f64)> {
    gorilla_crs_ctx(&GridContext::new(config.clone()))
}

/// [`gorilla_crs`] against a shared [`GridContext`] (reuses its cached
/// datasets instead of regenerating them). Failed datasets are logged
/// and skipped.
pub fn gorilla_crs_ctx(ctx: &GridContext) -> Vec<(DatasetKind, f64)> {
    Engine::new(ctx).gorilla_report().into_records_logged("gorilla baseline")
}

/// Runs Algorithm 1 for every `(dataset, model, seed)` and collects both
/// baseline and transformed records.
pub fn run_forecast_grid(config: &GridConfig) -> Vec<ForecastRecord> {
    run_forecast_grid_ctx(&GridContext::new(config.clone()))
}

/// [`run_forecast_grid`] against a shared [`GridContext`]. Test-subset
/// transforms are memoized in the context, so each `(dataset, method, ε)`
/// cell is compressed and decompressed exactly once no matter how many
/// `(model, seed)` tasks consume it. Failed or panicked tasks are logged
/// and their coordinates skipped; all other records survive.
pub fn run_forecast_grid_ctx(ctx: &GridContext) -> Vec<ForecastRecord> {
    Engine::new(ctx).forecast_report().into_records_logged("forecast grid")
}

/// Runs the §4.4.1 retraining scenario for every `(dataset, model, seed)`:
/// models are retrained on decompressed train/val data and scored on the
/// decompressed test subset against raw targets. Records carry the same
/// shape as [`run_forecast_grid`]'s (baseline has `method: None`).
pub fn run_retrain_grid(config: &GridConfig) -> Vec<ForecastRecord> {
    run_retrain_grid_ctx(&GridContext::new(config.clone()))
}

/// [`run_retrain_grid`] against a shared [`GridContext`]. Train, val, and
/// test transforms are all memoized, shared with any other grid using the
/// same context. Failed or panicked tasks are logged and skipped.
pub fn run_retrain_grid_ctx(ctx: &GridContext) -> Vec<ForecastRecord> {
    Engine::new(ctx).retrain_report().into_records_logged("retrain grid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_runner_preserves_order() {
        let out = run_parallel(100, 8, |i| i * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn parallel_runner_survives_a_panicking_task() {
        // The panic is trapped per task, so exactly the panicking index
        // is dropped and both workers keep draining.
        let out = run_parallel(20, 2, |i| {
            if i == 0 {
                panic!("injected worker panic");
            }
            i
        });
        assert_eq!(out, (1..20).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_runner_handles_more_threads_than_tasks() {
        let out = run_parallel(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(run_parallel(0, 4, |i| i).is_empty());
    }

    #[test]
    fn compression_grid_covers_cells() {
        let mut cfg = GridConfig::smoke();
        cfg.len = Some(1200);
        let recs = run_compression_grid(&cfg);
        assert_eq!(recs.len(), 3 * 3); // 3 methods x 3 eps
        for r in &recs {
            assert!(r.cr > 0.0 && r.cr.is_finite());
            assert!(r.te_nrmse >= 0.0);
            assert!(r.segments > 0);
        }
        // Higher error bound -> CR does not decrease (PMC).
        let pmc: Vec<&CompressionRecord> =
            recs.iter().filter(|r| r.method == Method::Pmc).collect();
        assert!(pmc[2].cr >= pmc[0].cr, "{} vs {}", pmc[2].cr, pmc[0].cr);
    }

    #[test]
    fn gorilla_baseline_present() {
        let cfg = GridConfig::smoke();
        let crs = gorilla_crs(&cfg);
        assert_eq!(crs.len(), 1);
        assert!(crs[0].1 > 0.2, "gorilla CR {}", crs[0].1);
    }

    #[test]
    fn forecast_grid_smoke() {
        let mut cfg = GridConfig::smoke();
        cfg.error_bounds = vec![0.05];
        cfg.models = vec![ModelKind::GBoost];
        let recs = run_forecast_grid(&cfg);
        // 1 baseline + 3 methods x 1 eps = 4 records
        assert_eq!(recs.len(), 4);
        assert!(recs.iter().any(|r| r.method.is_none()));
        for r in &recs {
            assert!(r.metrics.rmse.is_finite());
        }
    }

    #[test]
    fn forecast_grid_transforms_each_cell_exactly_once() {
        // The acceptance criterion of the shared cache: with several
        // (model, seed) tasks over the same dataset, each
        // (dataset, method, ε) test transform runs once; every further
        // request is a cache hit.
        let mut cfg = GridConfig::smoke();
        cfg.error_bounds = vec![0.05, 0.2];
        cfg.models = vec![ModelKind::GBoost, ModelKind::DLinear];
        let ctx = GridContext::new(cfg);
        let recs = run_forecast_grid_ctx(&ctx);
        let cells = 3 * 2; // methods x eps
        let tasks = 2; // 2 models x 1 seed
        assert_eq!(recs.len(), tasks * (1 + cells));
        assert_eq!(ctx.transforms.misses(), cells, "each cell transforms exactly once");
        assert_eq!(ctx.transforms.hits(), (tasks - 1) * cells);
        assert_eq!(ctx.transforms.len(), cells);
        // The dataset itself was generated once and shared.
        assert_eq!(ctx.datasets.misses(), 1);
    }

    #[test]
    fn retrain_grid_smoke() {
        let mut cfg = GridConfig::smoke();
        cfg.error_bounds = vec![0.1];
        cfg.models = vec![ModelKind::GBoost];
        let ctx = GridContext::new(cfg);
        let recs = run_retrain_grid_ctx(&ctx);
        // 1 baseline + 3 methods x 1 eps
        assert_eq!(recs.len(), 4);
        assert!(recs.iter().any(|r| r.method.is_none()));
        for r in &recs {
            assert!(r.metrics.rmse.is_finite());
        }
        // Train, val, and test were each transformed once per cell.
        assert_eq!(ctx.transforms.misses(), 3 * 3);
    }

    #[test]
    fn shared_context_reuses_datasets_across_grids() {
        let mut cfg = GridConfig::smoke();
        cfg.len = Some(1200);
        cfg.error_bounds = vec![0.1];
        let ctx = GridContext::new(cfg);
        let comp = run_compression_grid_ctx(&ctx);
        let gorilla = gorilla_crs_ctx(&ctx);
        assert_eq!(comp.len(), 3);
        assert_eq!(gorilla.len(), 1);
        // One generation serves both runners.
        assert_eq!(ctx.datasets.misses(), 1);
        assert!(ctx.datasets.hits() >= 3);
    }
}
