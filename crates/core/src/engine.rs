//! The task engine: typed task descriptors, a fault-isolated scheduler,
//! and structured per-task outcomes for the evaluation grid.
//!
//! The paper's evaluation is a cross-product (compressor × ε × dataset ×
//! model × seed, §3). Older revisions executed it as flat index loops
//! where one panicking task aborted the whole grid; the engine instead
//! wraps every task in [`std::panic::catch_unwind`] and reports a
//! [`TaskOutcome`] per task — `Ok(record)`, `Failed(ScenarioError)`, or
//! `Panicked(message)` — so a partial grid still produces a report.
//!
//! Scheduling is delegated to the sharded work-stealing substrate in
//! [`crate::sched`]: tasks are partitioned into shards keyed by
//! [`TaskCoord::shard_key`] (all tasks of one dataset share a shard),
//! each shard owns a bounded queue, idle workers steal from siblings,
//! and submission applies backpressure instead of materialising
//! unbounded task vectors. Properties the engine guarantees:
//!
//! * **Fault isolation** — a panic or error in one task never takes down
//!   a worker or another task; the worker traps it and moves on. The
//!   completion callback is trapped too: a panicking [`on_task_done`]
//!   callback is logged and counted, never fatal.
//! * **Deterministic assembly** — outcomes are returned in task order
//!   regardless of thread count, shard count, or steal schedule, so
//!   results are byte-identical across `threads = 1` and `threads = N`.
//! * **Bounded memory** — at most `shards × queue_capacity` task indices
//!   are queued at any instant, exported as the `engine_queue_depth`
//!   gauge; steals appear in `engine_steals_total`.
//! * **Cooperative cancellation** — a shared [`CancelFlag`] makes every
//!   not-yet-started task resolve to `Failed(ScenarioError::Cancelled)`;
//!   running tasks finish normally. A per-task completion callback
//!   ([`Engine::on_task_done`]) is the hook observability layers (and the
//!   `repro` progress display) plug into.
//!
//! A seeded or scripted [`ChaosSchedule`] ([`Engine::chaos_schedule`],
//! [`GridConfig::chaos_seed`]) injects worker kills, stalls, slow
//! workers, and callback panics at deterministic task indices; the
//! invariants above hold under every schedule (the chaos suite in
//! `crates/core/tests/engine_chaos.rs` proves it).
//!
//! [`on_task_done`]: Engine::on_task_done
//!
//! Tasks address the grid through the shared [`GridContext`], so the
//! exactly-once dataset/transform caching of [`crate::cache`] is
//! preserved: the engine schedules, the context shares.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use compression::codec::PeblcCompressor;
use compression::{Gorilla, Method};
use forecast::model::ModelKind;
use tsdata::datasets::DatasetKind;
use tsdata::metrics::{compression_ratio, nrmse, rmse};
use tsdata::scaler::StandardScaler;
use tsdata::split::make_windows;

use crate::cache::{GridContext, Subset};
use crate::grid::GridConfig;
use crate::results::{CompressionRecord, ForecastRecord, TaskFailure};
use crate::scenario::{
    score_scenario_with, score_transformed, score_windows, ScenarioError, ScenarioOutcome,
};
use crate::sched::{self, Backpressure, ChaosSchedule, RunStats};

/// Grid coordinates identifying one task. Fields that do not apply to a
/// task family are `None` (e.g. a [`CompressionTask`] has no model/seed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCoord {
    /// Dataset the task operates on.
    pub dataset: DatasetKind,
    /// Lossy method (`None` for per-dataset tasks like the Gorilla
    /// baseline and the forecast tasks, which span all methods).
    pub method: Option<Method>,
    /// Error bound.
    pub epsilon: Option<f64>,
    /// Forecasting model.
    pub model: Option<ModelKind>,
    /// Random seed.
    pub seed: Option<u64>,
}

impl TaskCoord {
    /// A coordinate carrying only a dataset.
    pub fn dataset(dataset: DatasetKind) -> Self {
        TaskCoord { dataset, method: None, epsilon: None, model: None, seed: None }
    }

    /// The scheduler shard key: an FNV-1a hash of the dataset (series)
    /// name. All tasks touching one dataset map to the same shard, so
    /// they tend to run on the worker whose caches that dataset's
    /// transforms already warmed; stealing only mixes shards when a
    /// worker goes idle.
    pub fn shard_key(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.dataset.name().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

impl std::fmt::Display for TaskCoord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.dataset.name())?;
        if let Some(m) = self.method {
            write!(f, "/{}", m.name())?;
        }
        if let Some(e) = self.epsilon {
            write!(f, "@{e}")?;
        }
        if let Some(m) = self.model {
            write!(f, " model={}", m.name())?;
        }
        if let Some(s) = self.seed {
            write!(f, " seed={s}")?;
        }
        Ok(())
    }
}

/// The structured result of one task.
#[derive(Debug)]
pub enum TaskOutcome<R> {
    /// The task produced its record(s).
    Ok(R),
    /// The task returned an error (bad split, codec failure, ...).
    Failed(ScenarioError),
    /// The task panicked; the message is the panic payload.
    Panicked(String),
}

impl<R> TaskOutcome<R> {
    /// The completion status (outcome without the payload).
    pub fn status(&self) -> TaskStatus {
        match self {
            TaskOutcome::Ok(_) => TaskStatus::Ok,
            TaskOutcome::Failed(_) => TaskStatus::Failed,
            TaskOutcome::Panicked(_) => TaskStatus::Panicked,
        }
    }

    /// The record, if the task succeeded.
    pub fn ok(self) -> Option<R> {
        match self {
            TaskOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the task succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, TaskOutcome::Ok(_))
    }
}

/// Completion status of a task, without its payload ([`TaskEvent`]s carry
/// this to keep the progress callback cheap and `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// Completed with a record.
    Ok,
    /// Completed with an error.
    Failed,
    /// Panicked.
    Panicked,
}

/// One per-task completion notification delivered to
/// [`Engine::on_task_done`].
///
/// Two orderings coexist because work stealing reorders execution:
/// `index` is **task order** (the task's position in the submitted
/// list — stable across runs and thread counts), while `seq` is
/// **completion order** (the position of this event among all events of
/// the run — schedule-dependent). Progress displays should render
/// `seq + 1` of `total` done; anything keyed to *which* task finished
/// must use `index`/`coord`.
#[derive(Debug, Clone, Copy)]
pub struct TaskEvent {
    /// Index of the completed task in the submitted task list (task
    /// order; identifies the task, not the pace of the run).
    pub index: usize,
    /// Completion sequence number: this is the `seq`-th task to finish
    /// (0-based, dense, schedule-dependent).
    pub seq: usize,
    /// Total number of tasks in the run.
    pub total: usize,
    /// The task's grid coordinates.
    pub coord: TaskCoord,
    /// How the task completed.
    pub status: TaskStatus,
}

/// Shared cooperative-cancellation flag. Clone it, hand one copy to the
/// engine, and call [`CancelFlag::cancel`] from anywhere (another thread,
/// a signal handler, a progress callback); tasks that have not started
/// when the flag is observed resolve to `Failed(ScenarioError::Cancelled)`.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// Creates an unset flag.
    pub fn new() -> Self {
        CancelFlag::default()
    }

    /// Requests cancellation of all not-yet-started tasks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A typed, schedulable unit of grid work. Implementations carry their
/// own coordinates and run against the shared [`GridContext`]; the
/// engine supplies scheduling, panic isolation, and outcome collection.
pub trait GridTask: Sync {
    /// What a successful run produces.
    type Output: Send;

    /// The task's grid coordinates (used in failure reports and events).
    fn coord(&self) -> TaskCoord;

    /// The task family name, used as the low-cardinality `family` label
    /// on telemetry spans and outcome counters (`"compression"`,
    /// `"forecast"`, …).
    fn family(&self) -> &'static str {
        "task"
    }

    /// Executes the task. Errors become [`TaskOutcome::Failed`]; panics
    /// are trapped by the engine and become [`TaskOutcome::Panicked`].
    fn run(&self, ctx: &GridContext) -> Result<Self::Output, ScenarioError>;
}

/// One compression-grid cell: measure TE, CR and segment count for
/// `(dataset, method, ε)` (Figure 2, Figure 3, Table 3 inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionTask {
    /// Dataset.
    pub dataset: DatasetKind,
    /// Lossy method.
    pub method: Method,
    /// Error bound.
    pub epsilon: f64,
}

impl CompressionTask {
    /// Enumerates the full `dataset × method × ε` cross-product of a
    /// configuration, in deterministic configuration order.
    pub fn enumerate(config: &GridConfig) -> Vec<CompressionTask> {
        config
            .datasets
            .iter()
            .flat_map(|&dataset| {
                config.methods.iter().flat_map(move |&method| {
                    config.error_bounds.iter().map(move |&epsilon| CompressionTask {
                        dataset,
                        method,
                        epsilon,
                    })
                })
            })
            .collect()
    }
}

impl GridTask for CompressionTask {
    type Output = CompressionRecord;

    fn family(&self) -> &'static str {
        "compression"
    }

    fn coord(&self) -> TaskCoord {
        TaskCoord {
            method: Some(self.method),
            epsilon: Some(self.epsilon),
            ..TaskCoord::dataset(self.dataset)
        }
    }

    fn run(&self, ctx: &GridContext) -> Result<CompressionRecord, ScenarioError> {
        let ds = ctx.try_dataset(self.dataset)?;
        let t = ctx.transform(self.dataset, Subset::Full, self.method, self.epsilon)?;
        let target = ds.series.target();
        Ok(CompressionRecord {
            dataset: self.dataset,
            method: self.method,
            epsilon: self.epsilon,
            te_nrmse: nrmse(target.values(), t.series.target().values()),
            te_rmse: rmse(target.values(), t.series.target().values()),
            cr: compression_ratio(ds.raw_size, t.stats.size_bytes),
            segments: t.stats.num_segments,
        })
    }
}

/// One Gorilla-baseline measurement: the lossless CR of a dataset's
/// target channel (the Figure-2 baseline line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GorillaTask {
    /// Dataset.
    pub dataset: DatasetKind,
}

impl GorillaTask {
    /// One task per configured dataset.
    pub fn enumerate(config: &GridConfig) -> Vec<GorillaTask> {
        config.datasets.iter().map(|&dataset| GorillaTask { dataset }).collect()
    }
}

impl GridTask for GorillaTask {
    type Output = (DatasetKind, f64);

    fn family(&self) -> &'static str {
        "gorilla"
    }

    fn coord(&self) -> TaskCoord {
        TaskCoord::dataset(self.dataset)
    }

    fn run(&self, ctx: &GridContext) -> Result<(DatasetKind, f64), ScenarioError> {
        let ds = ctx.try_dataset(self.dataset)?;
        let target = ds.series.target();
        let raw = compression::raw_bytes(target).len();
        let frame = Gorilla.compress(target, 0.0)?;
        Ok((self.dataset, compression_ratio(raw, frame.size_bytes())))
    }
}

/// One Algorithm-1 task: train a `(dataset, model, seed)` configuration
/// on raw data and score it on every `(method, ε)` transformed test
/// subset. Produces the baseline record plus one record per combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForecastTask {
    /// Dataset.
    pub dataset: DatasetKind,
    /// Forecasting model.
    pub model: ModelKind,
    /// Random seed.
    pub seed: u64,
}

impl ForecastTask {
    /// Enumerates `dataset × model × seed` in configuration order, with
    /// per-model seed counts from [`GridConfig::seeds_for`].
    pub fn enumerate(config: &GridConfig) -> Vec<ForecastTask> {
        config
            .datasets
            .iter()
            .flat_map(|&dataset| {
                config.models.iter().flat_map(move |&model| {
                    config.seeds_for(model).into_iter().map(move |seed| ForecastTask {
                        dataset,
                        model,
                        seed,
                    })
                })
            })
            .collect()
    }
}

impl GridTask for ForecastTask {
    type Output = Vec<ForecastRecord>;

    fn family(&self) -> &'static str {
        "forecast"
    }

    fn coord(&self) -> TaskCoord {
        TaskCoord {
            model: Some(self.model),
            seed: Some(self.seed),
            ..TaskCoord::dataset(self.dataset)
        }
    }

    fn run(&self, ctx: &GridContext) -> Result<Vec<ForecastRecord>, ScenarioError> {
        let config = &ctx.config;
        let ds = ctx.try_dataset(self.dataset)?;
        let split = &ds.split;
        let mut model = config.build_task_model(self.dataset, self.model, self.seed);
        // Raw-trained model: loaded from the artifact store when a
        // previous run checkpointed this (dataset, model, seed), fitted
        // and checkpointed otherwise.
        let key = config.artifact_key(self.dataset, self.model, self.seed, None, None);
        ctx.fit_or_load(&key, model.as_mut(), &split.train, &split.val)?;
        let compressors: Vec<Box<dyn PeblcCompressor>> =
            config.methods.iter().map(|m| m.compressor()).collect();
        let mut provider = |subset: Subset, c: &dyn PeblcCompressor, eps: f64| {
            let method = method_for(config, c.name())?;
            ctx.transform(self.dataset, subset, method, eps).map(|t| t.series.clone())
        };
        let outcome = score_scenario_with(
            model.as_ref(),
            &split.train,
            &split.test,
            &compressors,
            &config.error_bounds,
            config.eval_stride,
            config.batch_size,
            &mut provider,
        )?;
        outcome_to_records(config, self.dataset, self.model, self.seed, outcome)
    }
}

/// The §4.4.1 variant of [`ForecastTask`]: models are retrained on
/// decompressed train/val data and scored on the decompressed test
/// subset against raw targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrainTask {
    /// Dataset.
    pub dataset: DatasetKind,
    /// Forecasting model.
    pub model: ModelKind,
    /// Random seed.
    pub seed: u64,
}

impl RetrainTask {
    /// Enumerates `dataset × model × seed` in configuration order.
    pub fn enumerate(config: &GridConfig) -> Vec<RetrainTask> {
        ForecastTask::enumerate(config)
            .into_iter()
            .map(|t| RetrainTask { dataset: t.dataset, model: t.model, seed: t.seed })
            .collect()
    }
}

impl GridTask for RetrainTask {
    type Output = Vec<ForecastRecord>;

    fn family(&self) -> &'static str {
        "retrain"
    }

    fn coord(&self) -> TaskCoord {
        TaskCoord {
            model: Some(self.model),
            seed: Some(self.seed),
            ..TaskCoord::dataset(self.dataset)
        }
    }

    fn run(&self, ctx: &GridContext) -> Result<Vec<ForecastRecord>, ScenarioError> {
        let config = &ctx.config;
        let ds = ctx.try_dataset(self.dataset)?;
        let split = &ds.split;
        // Baseline: a raw-trained model scored on raw test data. Its
        // artifact key has no transform, so it is *shared* with the
        // forecast grid — a retrain run after a forecast run (or vice
        // versa) loads the same checkpoint instead of refitting.
        let mut base = config.build_task_model(self.dataset, self.model, self.seed);
        let base_key = config.artifact_key(self.dataset, self.model, self.seed, None, None);
        ctx.fit_or_load(&base_key, base.as_mut(), &split.train, &split.val)?;
        let scaler = StandardScaler::fit_single(split.train.target().values());
        let raw_windows =
            make_windows(&split.test, base.input_len(), base.horizon(), config.eval_stride);
        if raw_windows.is_empty() {
            return Err(ScenarioError::NoWindows);
        }
        let baseline = score_windows(base.as_ref(), &raw_windows, &scaler, config.batch_size)?;

        // Each (method, ε) retrains on the transformed train/val data;
        // the training transform is part of the artifact key.
        let mut transformed = Vec::new();
        for &method in &config.methods {
            for &eps in &config.error_bounds {
                let t_train = ctx.transform(self.dataset, Subset::Train, method, eps)?;
                let t_val = ctx.transform(self.dataset, Subset::Val, method, eps)?;
                let t_test = ctx.transform(self.dataset, Subset::Test, method, eps)?;
                let mut model = config.build_task_model(self.dataset, self.model, self.seed);
                let key = config.artifact_key(
                    self.dataset,
                    self.model,
                    self.seed,
                    Some(method),
                    Some(eps),
                );
                ctx.fit_or_load(&key, model.as_mut(), &t_train.series, &t_val.series)?;
                let metrics = score_transformed(
                    model.as_ref(),
                    &split.test,
                    &t_test.series,
                    &scaler,
                    config.eval_stride,
                    config.batch_size,
                )?;
                transformed.push((method.name(), eps, metrics));
            }
        }
        let outcome = ScenarioOutcome { baseline, transformed };
        outcome_to_records(config, self.dataset, self.model, self.seed, outcome)
    }
}

/// Resolves a method name back to the configured [`Method`].
fn method_for(config: &GridConfig, name: &'static str) -> Result<Method, ScenarioError> {
    config
        .methods
        .iter()
        .copied()
        .find(|m| m.name() == name)
        .ok_or(ScenarioError::UnknownMethod(name))
}

/// Converts one scenario outcome into grid records (baseline first).
fn outcome_to_records(
    config: &GridConfig,
    dataset: DatasetKind,
    model: ModelKind,
    seed: u64,
    outcome: ScenarioOutcome,
) -> Result<Vec<ForecastRecord>, ScenarioError> {
    let mut recs = vec![ForecastRecord {
        dataset,
        model,
        method: None,
        epsilon: 0.0,
        seed,
        metrics: outcome.baseline,
    }];
    for (name, eps, metrics) in outcome.transformed {
        let method = method_for(config, name)?;
        recs.push(ForecastRecord {
            dataset,
            model,
            method: Some(method),
            epsilon: eps,
            seed,
            metrics,
        });
    }
    Ok(recs)
}

/// Successful records plus structured failures from one engine run, in
/// task order. A partial grid still renders: consumers read `records`
/// and surface `failures` via [`crate::results::failure_summary`].
#[derive(Debug)]
pub struct GridReport<R> {
    /// Outputs of successful tasks, in task order.
    pub records: Vec<R>,
    /// One entry per failed or panicked task, in task order.
    pub failures: Vec<TaskFailure>,
}

impl<R> GridReport<R> {
    /// Logs a failure summary to stderr (no-op when everything
    /// succeeded) and returns the successful records.
    pub fn into_records_logged(self, label: &str) -> Vec<R> {
        if let Some(summary) = crate::results::failure_summary(&self.failures) {
            eprintln!("[{label}] {summary}");
        }
        self.records
    }
}

type ProgressFn<'a> = Box<dyn Fn(TaskEvent) + Sync + 'a>;

/// The scheduler front end: runs typed tasks over the sharded
/// work-stealing pool ([`crate::sched`]) with per-task panic isolation,
/// a trapped completion callback, and deterministic outcome assembly.
pub struct Engine<'c> {
    ctx: &'c GridContext,
    threads: usize,
    shards: usize,
    queue_capacity: usize,
    cancel: CancelFlag,
    on_done: Option<ProgressFn<'c>>,
    chaos: Option<ChaosSchedule>,
    chaos_seed: Option<u64>,
}

/// Event density (% of tasks) for schedules built from
/// [`GridConfig::chaos_seed`] / [`Engine::chaos_seed`].
const SEEDED_CHAOS_INTENSITY_PCT: usize = 20;

impl<'c> Engine<'c> {
    /// Creates an engine over a shared context, taking thread count,
    /// shard count, and chaos seed from its configuration.
    pub fn new(ctx: &'c GridContext) -> Self {
        Engine {
            ctx,
            threads: ctx.config.threads,
            shards: ctx.config.shards,
            queue_capacity: sched::DEFAULT_QUEUE_CAPACITY,
            cancel: CancelFlag::new(),
            on_done: None,
            chaos: None,
            chaos_seed: ctx.config.chaos_seed,
        }
    }

    /// Overrides the worker-thread count (the outcome *order* is
    /// identical for any value; this only affects wall-clock).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the shard count (`0` = one shard per worker). Outcomes
    /// are identical for any value; shards only shape queue locality.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Overrides the per-shard bounded queue capacity (clamped to ≥ 1;
    /// default [`sched::DEFAULT_QUEUE_CAPACITY`]). Peak queued work is
    /// `shards × capacity`.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Installs a shared cancellation flag.
    pub fn cancel_flag(mut self, flag: CancelFlag) -> Self {
        self.cancel = flag;
        self
    }

    /// Installs an explicit chaos schedule for the next run. Events are
    /// one-shot: a schedule is consumed by the run that fires it, so
    /// build a fresh engine (or schedule) per chaos run.
    pub fn chaos_schedule(mut self, schedule: ChaosSchedule) -> Self {
        self.chaos = Some(schedule);
        self
    }

    /// Derives a fresh seeded chaos schedule for each run (the task
    /// count is only known at `run` time). Overridden by an explicit
    /// [`Engine::chaos_schedule`].
    pub fn chaos_seed(mut self, seed: u64) -> Self {
        self.chaos_seed = Some(seed);
        self
    }

    /// Installs a per-task completion callback, invoked from worker
    /// threads as each task finishes (in completion order — see
    /// [`TaskEvent`] for the `index` vs `seq` distinction). A panic in
    /// the callback is trapped, logged to stderr, and counted in
    /// [`RunStats::callback_panics`]; it never aborts the run.
    pub fn on_task_done<F>(mut self, callback: F) -> Self
    where
        F: Fn(TaskEvent) + Sync + 'c,
    {
        self.on_done = Some(Box::new(callback));
        self
    }

    /// The context this engine schedules against.
    pub fn context(&self) -> &GridContext {
        self.ctx
    }

    /// Runs every task, returning one [`TaskOutcome`] per task **in task
    /// order**, independent of thread count, shard count, and steal
    /// schedule. A panicking task is trapped by the worker
    /// (`catch_unwind`) and yields `Panicked`; tasks observed after
    /// cancellation yield `Failed(ScenarioError::Cancelled)` without
    /// running. An empty task list returns immediately without spawning
    /// workers (so `threads = 0, n = 0` is a no-op, not a panic).
    pub fn run<T: GridTask>(&self, tasks: &[T]) -> Vec<TaskOutcome<T::Output>> {
        self.run_with_stats(tasks).0
    }

    /// [`Engine::run`], also returning the scheduler's [`RunStats`]
    /// (steals, peak queue depth, chaos casualties, callback panics).
    pub fn run_with_stats<T: GridTask>(
        &self,
        tasks: &[T],
    ) -> (Vec<TaskOutcome<T::Output>>, RunStats) {
        let n = tasks.len();
        if n == 0 {
            return (Vec::new(), RunStats::default());
        }
        let workers = self.threads.max(1).min(n);
        let shards = if self.shards == 0 { workers } else { self.shards };
        // A seeded schedule is built fresh per run (its one-shot flags
        // start clean); an explicit schedule takes precedence.
        let seeded = match (&self.chaos, self.chaos_seed) {
            (None, Some(seed)) => Some(ChaosSchedule::seeded(seed, n, SEEDED_CHAOS_INTENSITY_PCT)),
            _ => None,
        };
        let chaos = self.chaos.as_ref().or(seeded.as_ref());
        let seq = AtomicUsize::new(0);
        let callback_panics = AtomicU64::new(0);
        let (outcomes, mut stats) = sched::run_sharded(
            n,
            workers,
            shards,
            self.queue_capacity,
            chaos,
            Backpressure::Block,
            |i| tasks[i].coord().shard_key(),
            |i, inject_callback_panic| {
                let outcome = self.run_one(&tasks[i]);
                self.notify_done(
                    TaskEvent {
                        index: i,
                        seq: seq.fetch_add(1, Ordering::Relaxed),
                        total: n,
                        coord: tasks[i].coord(),
                        status: outcome.status(),
                    },
                    inject_callback_panic,
                    &callback_panics,
                );
                outcome
            },
        )
        .expect("blocking backpressure never rejects a task");
        stats.callback_panics = callback_panics.load(Ordering::Relaxed);
        (outcomes, stats)
    }

    /// Delivers one completion event, trapping callback panics so a
    /// faulty progress callback (or an injected chaos one) degrades to a
    /// logged warning instead of unwinding the worker and aborting the
    /// grid through the scope join.
    fn notify_done(&self, event: TaskEvent, inject_panic: bool, panics: &AtomicU64) {
        let trapped = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("chaos: injected callback panic at task {}", event.index);
            }
            if let Some(cb) = &self.on_done {
                cb(event);
            }
        }));
        if let Err(payload) = trapped {
            panics.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("engine_callback_panics_total", &[], 1);
            eprintln!(
                "[engine] on_task_done callback panicked for task {} ({}): {}",
                event.index,
                event.coord,
                panic_message(payload.as_ref())
            );
        }
    }

    fn run_one<T: GridTask>(&self, task: &T) -> TaskOutcome<T::Output> {
        let family = task.family();
        if self.cancel.is_cancelled() {
            telemetry::counter_add(
                "engine_tasks_total",
                &[("family", family), ("status", "cancelled")],
                1,
            );
            return TaskOutcome::Failed(ScenarioError::Cancelled);
        }
        // The label strings are only materialised while telemetry records;
        // the disabled path pays one atomic load and no formatting.
        let span = if telemetry::enabled() {
            let coord = task.coord();
            let epsilon = coord.epsilon.map(|e| e.to_string()).unwrap_or_default();
            let seed = coord.seed.map(|s| s.to_string()).unwrap_or_default();
            telemetry::span(
                "engine.task",
                &[
                    ("family", family),
                    ("dataset", coord.dataset.name()),
                    ("method", coord.method.map(|m| m.name()).unwrap_or("")),
                    ("epsilon", &epsilon),
                    ("model", coord.model.map(|m| m.name()).unwrap_or("")),
                    ("seed", &seed),
                ],
            )
        } else {
            telemetry::Span::inert()
        };
        let start = std::time::Instant::now();
        let outcome = match catch_unwind(AssertUnwindSafe(|| task.run(self.ctx))) {
            Ok(Ok(r)) => TaskOutcome::Ok(r),
            Ok(Err(e)) => TaskOutcome::Failed(e),
            Err(payload) => TaskOutcome::Panicked(panic_message(payload.as_ref())),
        };
        drop(span);
        let status = match outcome.status() {
            TaskStatus::Ok => "ok",
            TaskStatus::Failed => "failed",
            TaskStatus::Panicked => "panicked",
        };
        telemetry::counter_add("engine_tasks_total", &[("family", family), ("status", status)], 1);
        telemetry::observe(
            "engine_task_seconds",
            &[("family", family)],
            telemetry::secs(start.elapsed()),
        );
        outcome
    }

    /// Runs every task and splits the outcomes into successful records
    /// and structured [`TaskFailure`]s, both in task order.
    pub fn run_report<T: GridTask>(&self, tasks: &[T]) -> GridReport<T::Output> {
        let outcomes = self.run(tasks);
        let mut records = Vec::with_capacity(tasks.len());
        let mut failures = Vec::new();
        for (task, outcome) in tasks.iter().zip(outcomes) {
            match outcome {
                TaskOutcome::Ok(r) => records.push(r),
                TaskOutcome::Failed(e) => failures.push(TaskFailure {
                    coord: task.coord(),
                    error: e.to_string(),
                    panicked: false,
                }),
                TaskOutcome::Panicked(msg) => {
                    failures.push(TaskFailure { coord: task.coord(), error: msg, panicked: true })
                }
            }
        }
        GridReport { records, failures }
    }

    /// The compression grid (`dataset × method × ε` TE/CR cells) as a
    /// structured report.
    pub fn compression_report(&self) -> GridReport<CompressionRecord> {
        self.run_report(&CompressionTask::enumerate(&self.ctx.config))
    }

    /// The Gorilla lossless baseline per dataset as a structured report.
    pub fn gorilla_report(&self) -> GridReport<(DatasetKind, f64)> {
        self.run_report(&GorillaTask::enumerate(&self.ctx.config))
    }

    /// The forecast grid (Algorithm 1 per `dataset × model × seed`) as a
    /// structured report, records flattened in task order.
    pub fn forecast_report(&self) -> GridReport<ForecastRecord> {
        flatten(self.run_report(&ForecastTask::enumerate(&self.ctx.config)))
    }

    /// The §4.4.1 retraining grid as a structured report, records
    /// flattened in task order.
    pub fn retrain_report(&self) -> GridReport<ForecastRecord> {
        flatten(self.run_report(&RetrainTask::enumerate(&self.ctx.config)))
    }
}

/// Flattens a report of per-task record batches into a flat record list.
fn flatten<R>(report: GridReport<Vec<R>>) -> GridReport<R> {
    GridReport {
        records: report.records.into_iter().flatten().collect(),
        failures: report.failures,
    }
}

/// Extracts a readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A test task that succeeds, fails, or panics by index.
    struct ScriptedTask {
        index: usize,
        mode: Mode,
    }

    enum Mode {
        Ok,
        Fail,
        Panic,
    }

    impl GridTask for ScriptedTask {
        type Output = usize;

        fn coord(&self) -> TaskCoord {
            TaskCoord { seed: Some(self.index as u64), ..TaskCoord::dataset(DatasetKind::ETTm1) }
        }

        fn run(&self, _ctx: &GridContext) -> Result<usize, ScenarioError> {
            match self.mode {
                Mode::Ok => Ok(self.index * 10),
                Mode::Fail => Err(ScenarioError::NoWindows),
                Mode::Panic => panic!("scripted panic at {}", self.index),
            }
        }
    }

    fn scripted(n: usize, fail: &[usize], panic: &[usize]) -> Vec<ScriptedTask> {
        (0..n)
            .map(|index| ScriptedTask {
                index,
                mode: if panic.contains(&index) {
                    Mode::Panic
                } else if fail.contains(&index) {
                    Mode::Fail
                } else {
                    Mode::Ok
                },
            })
            .collect()
    }

    fn test_ctx() -> GridContext {
        GridContext::new(GridConfig::smoke())
    }

    #[test]
    fn panicking_task_is_isolated() {
        let ctx = test_ctx();
        let tasks = scripted(12, &[3], &[7]);
        let outcomes = Engine::new(&ctx).threads(4).run(&tasks);
        assert_eq!(outcomes.len(), 12);
        for (i, o) in outcomes.iter().enumerate() {
            match i {
                3 => assert!(matches!(o, TaskOutcome::Failed(ScenarioError::NoWindows))),
                7 => match o {
                    TaskOutcome::Panicked(msg) => {
                        assert!(msg.contains("scripted panic at 7"), "{msg}")
                    }
                    other => panic!("expected Panicked, got {other:?}"),
                },
                _ => assert!(matches!(o, TaskOutcome::Ok(v) if *v == i * 10)),
            }
        }
    }

    #[test]
    fn outcomes_are_deterministic_across_thread_counts() {
        let ctx = test_ctx();
        let tasks = scripted(40, &[5, 11], &[17]);
        let one: Vec<String> =
            Engine::new(&ctx).threads(1).run(&tasks).iter().map(|o| format!("{o:?}")).collect();
        let four: Vec<String> =
            Engine::new(&ctx).threads(4).run(&tasks).iter().map(|o| format!("{o:?}")).collect();
        assert_eq!(one, four);
    }

    #[test]
    fn report_splits_records_and_failures_in_task_order() {
        let ctx = test_ctx();
        let tasks = scripted(6, &[1], &[4]);
        let report = Engine::new(&ctx).threads(3).run_report(&tasks);
        assert_eq!(report.records, vec![0, 20, 30, 50]);
        assert_eq!(report.failures.len(), 2);
        assert!(!report.failures[0].panicked);
        assert_eq!(report.failures[0].coord.seed, Some(1));
        assert!(report.failures[1].panicked);
        assert_eq!(report.failures[1].coord.seed, Some(4));
        assert!(report.failures[1].error.contains("scripted panic"));
    }

    #[test]
    fn cancel_flag_skips_not_yet_started_tasks() {
        let ctx = test_ctx();
        let tasks = scripted(20, &[], &[]);
        let flag = CancelFlag::new();
        flag.cancel();
        let outcomes = Engine::new(&ctx).threads(2).cancel_flag(flag).run(&tasks);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, TaskOutcome::Failed(ScenarioError::Cancelled))));
    }

    #[test]
    fn cancel_mid_run_stops_remaining_tasks() {
        let ctx = test_ctx();
        let tasks = scripted(50, &[], &[]);
        let flag = CancelFlag::new();
        let trigger = flag.clone();
        let outcomes = Engine::new(&ctx)
            .threads(1)
            .cancel_flag(flag)
            .on_task_done(move |e| {
                if e.index == 9 {
                    trigger.cancel();
                }
            })
            .run(&tasks);
        let completed = outcomes.iter().filter(|o| o.is_ok()).count();
        let cancelled = outcomes
            .iter()
            .filter(|o| matches!(o, TaskOutcome::Failed(ScenarioError::Cancelled)))
            .count();
        assert_eq!(completed, 10, "tasks 0..=9 ran before the flag was set");
        assert_eq!(cancelled, 40);
    }

    #[test]
    fn progress_events_cover_every_task() {
        let ctx = test_ctx();
        let tasks = scripted(15, &[2], &[9]);
        let events: Mutex<Vec<TaskEvent>> = Mutex::new(Vec::new());
        Engine::new(&ctx).threads(4).on_task_done(|e| events.lock().unwrap().push(e)).run(&tasks);
        let mut events = events.into_inner().unwrap();
        events.sort_by_key(|e| e.index);
        assert_eq!(events.len(), 15);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.index, i);
            assert_eq!(e.total, 15);
            let expected = match i {
                2 => TaskStatus::Failed,
                9 => TaskStatus::Panicked,
                _ => TaskStatus::Ok,
            };
            assert_eq!(e.status, expected, "task {i}");
        }
    }

    #[test]
    fn panicking_callback_is_trapped_and_counted() {
        // Regression: the callback used to run outside the worker's
        // catch_unwind, so one bad progress callback aborted the whole
        // grid through the scope join. It must now degrade to a logged
        // warning, a counted panic, and an otherwise complete run.
        let ctx = test_ctx();
        let tasks = scripted(12, &[], &[]);
        let (outcomes, stats) = Engine::new(&ctx)
            .threads(3)
            .on_task_done(|e| {
                if e.index == 5 {
                    panic!("progress callback bug at {}", e.index);
                }
            })
            .run_with_stats(&tasks);
        assert_eq!(outcomes.len(), 12);
        assert!(outcomes.iter().all(|o| o.is_ok()), "task outcomes are unaffected");
        assert_eq!(stats.callback_panics, 1);
    }

    #[test]
    fn injected_chaos_callback_panics_are_counted() {
        let ctx = test_ctx();
        let tasks = scripted(10, &[], &[]);
        let chaos = ChaosSchedule::scripted([
            (2, sched::ChaosEvent::CallbackPanic),
            (7, sched::ChaosEvent::CallbackPanic),
        ]);
        let (outcomes, stats) =
            Engine::new(&ctx).threads(2).chaos_schedule(chaos).run_with_stats(&tasks);
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert_eq!(stats.callback_panics, 2);
    }

    #[test]
    fn chaos_kills_leave_outcomes_byte_identical() {
        let ctx = test_ctx();
        let tasks = scripted(30, &[4], &[11]);
        let clean: Vec<String> =
            Engine::new(&ctx).threads(1).run(&tasks).iter().map(|o| format!("{o:?}")).collect();
        let chaos =
            ChaosSchedule::scripted((0..30).step_by(5).map(|i| (i, sched::ChaosEvent::Kill)));
        let (outcomes, stats) =
            Engine::new(&ctx).threads(4).chaos_schedule(chaos).run_with_stats(&tasks);
        let chaotic: Vec<String> = outcomes.iter().map(|o| format!("{o:?}")).collect();
        assert_eq!(clean, chaotic);
        assert!(stats.worker_deaths >= 1);
        assert_eq!(stats.requeued, stats.worker_deaths);
    }

    #[test]
    fn empty_grid_with_zero_config_threads_is_a_noop() {
        // threads = 0 with n = 0 used to spawn a pointless worker; the
        // run must now return immediately with no outcomes.
        let mut cfg = GridConfig::smoke();
        cfg.threads = 0;
        let ctx = GridContext::new(cfg);
        let outcomes = Engine::new(&ctx).run(&scripted(0, &[], &[]));
        assert!(outcomes.is_empty());
        let (outcomes, stats) = Engine::new(&ctx).run_with_stats(&scripted(0, &[], &[]));
        assert!(outcomes.is_empty());
        assert_eq!(stats, RunStats::default());
    }

    #[test]
    fn event_index_is_task_order_and_seq_is_completion_order() {
        let ctx = test_ctx();
        let tasks = scripted(25, &[], &[]);
        let events: Mutex<Vec<TaskEvent>> = Mutex::new(Vec::new());
        Engine::new(&ctx).threads(4).on_task_done(|e| events.lock().unwrap().push(e)).run(&tasks);
        let events = events.into_inner().unwrap();
        assert_eq!(events.len(), 25);
        // `seq` is dense completion order: 0..n with no gaps.
        let mut seqs: Vec<usize> = events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..25).collect::<Vec<_>>());
        // `index` identifies the task regardless of when it finished.
        let mut indices: Vec<usize> = events.iter().map(|e| e.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..25).collect::<Vec<_>>());
        for e in &events {
            assert_eq!(e.coord.seed, Some(e.index as u64), "coord follows index, not seq");
        }
    }

    #[test]
    fn enumeration_orders_match_configuration() {
        let mut cfg = GridConfig::smoke();
        cfg.error_bounds = vec![0.1, 0.2];
        let comp = CompressionTask::enumerate(&cfg);
        assert_eq!(comp.len(), 3 * 2); // methods x eps
        assert_eq!(comp[0].epsilon, 0.1);
        assert_eq!(comp[1].epsilon, 0.2);
        let fore = ForecastTask::enumerate(&cfg);
        assert_eq!(fore.len(), 2); // 2 models x 1 seed
        let retrain = RetrainTask::enumerate(&cfg);
        assert_eq!(retrain.len(), fore.len());
        assert_eq!(GorillaTask::enumerate(&cfg).len(), 1);
    }

    #[test]
    fn coord_display_is_readable() {
        let c = TaskCoord {
            method: Some(Method::Pmc),
            epsilon: Some(0.1),
            ..TaskCoord::dataset(DatasetKind::ETTm1)
        };
        assert_eq!(c.to_string(), "ETTm1/PMC@0.1");
        let f = ForecastTask { dataset: DatasetKind::Solar, model: ModelKind::GBoost, seed: 41 };
        assert_eq!(f.coord().to_string(), "Solar model=GBoost seed=41");
    }
}
