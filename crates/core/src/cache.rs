//! Shared caches for the evaluation grids.
//!
//! The forecast grid runs one task per `(dataset, model, seed)`, but the
//! transformation `T(subset | C, ε)` of Definition 5 depends only on
//! `(dataset, subset, method, ε)`. Without sharing, every task re-compresses
//! and re-decompresses the same test subset — `models × seeds` redundant
//! codec passes per cell, which dominates grid wall-clock for the cheap
//! models. [`TransformCache`] memoizes each transform exactly once behind a
//! `parking_lot` lock, and [`DatasetCache`] does the same for generated
//! datasets (series, split, and raw compressed size), so the compression
//! grid, the Gorilla baseline, and both forecast grids can share one
//! generation pass. [`GridContext`] bundles both caches with the grid
//! configuration and is the handle the grid runners thread through.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use compression::codec::PeblcCompressor;
use compression::Method;
use forecast::model::{ForecastError, Forecaster};
use parking_lot::{Mutex, RwLock};
use tsdata::datasets::DatasetKind;
use tsdata::series::MultiSeries;
use tsdata::split::Split;

use crate::artifact::{ArtifactKey, ArtifactStore};
use crate::grid::GridConfig;
use crate::scenario::ScenarioError;
use crate::storeback::StoreBackend;

/// Which slice of a dataset a transform applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subset {
    /// The whole series, target channel only (the compression grid's view).
    Full,
    /// The training subset (first 70%).
    Train,
    /// The validation subset (next 10%).
    Val,
    /// The test subset (last 20%).
    Test,
}

/// Cache key for one transform: `(dataset, subset, method, ε)`. The error
/// bound is stored as its bit pattern so the key is `Eq + Hash`; grid
/// configurations enumerate bounds from one list, so bit equality is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransformKey {
    /// Source dataset.
    pub dataset: DatasetKind,
    /// Which slice of the dataset.
    pub subset: Subset,
    /// Compression method.
    pub method: Method,
    eps_bits: u64,
}

impl TransformKey {
    /// Builds a key; `epsilon` must be finite.
    pub fn new(dataset: DatasetKind, subset: Subset, method: Method, epsilon: f64) -> Self {
        TransformKey { dataset, subset, method, eps_bits: epsilon.to_bits() }
    }

    /// The error bound this key was built with.
    pub fn epsilon(&self) -> f64 {
        f64::from_bits(self.eps_bits)
    }
}

/// Size and segment statistics of the compressed frame behind a cached
/// transform (the target channel's frame).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Final compressed size in bytes (Eq. 3 numerator/denominator input).
    pub size_bytes: usize,
    /// Number of segments the compressor produced (Figure 3).
    pub num_segments: usize,
}

/// One memoized transform: the decompressed series plus the compressed
/// frame's statistics.
#[derive(Debug, Clone)]
pub struct CachedTransform {
    /// The decompressed (error-bounded) series, all channels transformed.
    pub series: Arc<MultiSeries>,
    /// Stats of the target channel's compressed frame.
    pub stats: FrameStats,
}

/// Applies the transformation `T` to every channel of a series, also
/// returning the compressed-frame statistics of the *target* channel.
///
/// This is the cache-facing sibling of
/// [`transform_series`](crate::scenario::transform_series), which discards
/// the frames.
pub fn transform_with_stats(
    data: &MultiSeries,
    compressor: &dyn PeblcCompressor,
    epsilon: f64,
) -> Result<(MultiSeries, FrameStats), ScenarioError> {
    let mut stats = FrameStats::default();
    let mut idx = 0usize;
    let target = data.target_index();
    let out = data.try_map_channels(|c| {
        let i = idx;
        idx += 1;
        let (d, frame) = compressor.transform(c, epsilon).map_err(ScenarioError::from)?;
        if i == target {
            stats = FrameStats { size_bytes: frame.size_bytes(), num_segments: frame.num_segments };
        }
        Ok::<_, ScenarioError>(d)
    })?;
    Ok((out, stats))
}

/// A lazily filled, exactly-once slot. The outer map is read-locked on the
/// hot path; each key owns a `Mutex<Option<..>>` so concurrent first
/// requests for the *same* key serialize on that key alone while other
/// keys proceed, and the computation runs exactly once.
type Slot<T> = Arc<Mutex<Option<Arc<T>>>>;

fn slot_for<K: Copy + Eq + std::hash::Hash, T>(
    map: &RwLock<HashMap<K, Slot<T>>>,
    key: K,
) -> Slot<T> {
    if let Some(slot) = map.read().get(&key) {
        return slot.clone();
    }
    map.write().entry(key).or_insert_with(|| Arc::new(Mutex::new(None))).clone()
}

/// Memoizes transforms per [`TransformKey`], computing each at most once.
#[derive(Debug, Default)]
pub struct TransformCache {
    slots: RwLock<HashMap<TransformKey, Slot<CachedTransform>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl TransformCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        TransformCache::default()
    }

    /// Returns the cached transform for `key`, computing it via `compute`
    /// on first request. Failed computations are not cached: the error
    /// propagates and a later request retries (grid tasks abort on codec
    /// errors, so retries are not on any hot path).
    pub fn get_or_compute<F>(
        &self,
        key: TransformKey,
        compute: F,
    ) -> Result<Arc<CachedTransform>, ScenarioError>
    where
        F: FnOnce() -> Result<(MultiSeries, FrameStats), ScenarioError>,
    {
        let slot = slot_for(&self.slots, key);
        let mut guard = slot.lock();
        if let Some(cached) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("transform_cache_hits_total", &[], 1);
            return Ok(cached.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("transform_cache_misses_total", &[], 1);
        let start = std::time::Instant::now();
        let (series, stats) = compute()?;
        telemetry::observe(
            "transform_compute_seconds",
            &[("method", key.method.name())],
            telemetry::secs(start.elapsed()),
        );
        let cached = Arc::new(CachedTransform { series: Arc::new(series), stats });
        *guard = Some(cached.clone());
        Ok(cached)
    }

    /// Number of requests served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of requests that ran the transform (== distinct keys seen,
    /// when every computation succeeds).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.read().is_empty()
    }
}

/// One generated dataset with everything the grids derive from it.
#[derive(Debug, Clone)]
pub struct CachedDataset {
    /// The generated multivariate series.
    pub series: MultiSeries,
    /// Its 70/10/20 chronological split.
    pub split: Split,
    /// gzip-compressed size of the raw target-channel bytes (Eq. 3's
    /// lossless reference size).
    pub raw_size: usize,
}

/// Memoizes dataset generation per [`DatasetKind`].
#[derive(Debug, Default)]
pub struct DatasetCache {
    slots: RwLock<HashMap<DatasetKind, Slot<CachedDataset>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl DatasetCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DatasetCache::default()
    }

    /// Returns the cached dataset, generating it via `generate` on first
    /// request. Failed generations are not cached: the error propagates to
    /// the requesting task and a later request retries.
    pub fn get_or_try_generate<F>(
        &self,
        kind: DatasetKind,
        generate: F,
    ) -> Result<Arc<CachedDataset>, ScenarioError>
    where
        F: FnOnce() -> Result<CachedDataset, ScenarioError>,
    {
        let slot = slot_for(&self.slots, kind);
        let mut guard = slot.lock();
        if let Some(cached) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("dataset_cache_hits_total", &[], 1);
            return Ok(cached.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("dataset_cache_misses_total", &[], 1);
        let start = std::time::Instant::now();
        let cached = Arc::new(generate()?);
        telemetry::observe(
            "dataset_generate_seconds",
            &[("dataset", kind.name())],
            telemetry::secs(start.elapsed()),
        );
        *guard = Some(cached.clone());
        Ok(cached)
    }

    /// Number of requests served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of requests that generated a dataset.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Shared state for one grid run: the configuration plus both caches.
/// Running several grids (compression, forecast, retrain, Gorilla
/// baseline) against the *same* context shares dataset generation and
/// transforms across all of them.
#[derive(Debug)]
pub struct GridContext {
    /// The grid configuration.
    pub config: GridConfig,
    /// Generated datasets.
    pub datasets: DatasetCache,
    /// Memoized transforms.
    pub transforms: TransformCache,
    artifacts: Option<ArtifactStore>,
    /// Present when the configuration asked for store-backed transforms:
    /// subsets are staged into the chunked store once and every transform
    /// streams from it (DESIGN.md §12).
    store: Option<Arc<StoreBackend>>,
    models_loaded: AtomicUsize,
    models_fitted: AtomicUsize,
}

impl GridContext {
    /// Creates a context with empty caches. When the configuration names
    /// an artifact directory, the store is opened here so every grid
    /// running against this context checkpoints and resumes through it;
    /// an unopenable store degrades to fitting from scratch with a
    /// warning rather than failing the run.
    pub fn new(config: GridConfig) -> Self {
        let artifacts = config.artifacts.as_ref().and_then(|dir| match ArtifactStore::open(dir) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!(
                    "[artifacts] cannot open store at {}: {e}; fitting from scratch",
                    dir.display()
                );
                None
            }
        });
        let store = config.store_backed.then(|| Arc::new(StoreBackend::default()));
        GridContext {
            config,
            datasets: DatasetCache::new(),
            transforms: TransformCache::new(),
            artifacts,
            store,
            models_loaded: AtomicUsize::new(0),
            models_fitted: AtomicUsize::new(0),
        }
    }

    /// The chunked-store backend, when this context is store-backed.
    pub fn store_backend(&self) -> Option<&Arc<StoreBackend>> {
        self.store.as_ref()
    }

    /// The artifact store, when the configuration enabled one.
    pub fn artifact_store(&self) -> Option<&ArtifactStore> {
        self.artifacts.as_ref()
    }

    /// `(loaded, fitted)` model counts across every task run against this
    /// context — the numbers behind the repro CLI's
    /// `loaded=N fitted=M` log line. A resumed run reports `fitted=0`.
    pub fn fit_counts(&self) -> (usize, usize) {
        (self.models_loaded.load(Ordering::Relaxed), self.models_fitted.load(Ordering::Relaxed))
    }

    /// Produces a fitted model: restored from the artifact store when a
    /// previous run checkpointed this exact `key`, fitted (and
    /// checkpointed) otherwise.
    ///
    /// Robustness policy: a *missing* artifact is the normal cold-start
    /// path; an *unreadable or rejected* one (corruption, format version
    /// skew, architecture mismatch) is warned about and treated as
    /// missing, so a damaged store degrades to a slower run, never a
    /// failed one. Models that don't support state export
    /// ([`ForecastError::InvalidState`]) fit normally and skip the
    /// checkpoint.
    pub fn fit_or_load(
        &self,
        key: &ArtifactKey,
        model: &mut dyn Forecaster,
        train: &MultiSeries,
        val: &MultiSeries,
    ) -> Result<(), ScenarioError> {
        if let Some(store) = &self.artifacts {
            match store.load(key) {
                Ok(Some(state)) => match model.load_state(&state) {
                    Ok(()) => {
                        self.models_loaded.fetch_add(1, Ordering::Relaxed);
                        telemetry::counter_add(
                            "models_loaded_total",
                            &[("model", key.model.as_str())],
                            1,
                        );
                        return Ok(());
                    }
                    Err(e) => eprintln!(
                        "[artifacts] stored state for {} rejected ({e}); refitting",
                        key.canonical()
                    ),
                },
                Ok(None) => {}
                Err(e) => eprintln!(
                    "[artifacts] unreadable artifact for {} ({e}); refitting",
                    key.canonical()
                ),
            }
        }
        {
            let _span = telemetry::span("model.fit", &[("model", key.model.as_str())]);
            let start = std::time::Instant::now();
            model.fit(train, val)?;
            telemetry::observe(
                "model_fit_seconds",
                &[("model", key.model.as_str())],
                telemetry::secs(start.elapsed()),
            );
        }
        self.models_fitted.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("models_fitted_total", &[("model", key.model.as_str())], 1);
        if let Some(store) = &self.artifacts {
            match model.save_state() {
                Ok(state) => {
                    if let Err(e) = store.save(key, &state) {
                        eprintln!("[artifacts] failed to save {}: {e}", key.canonical());
                    }
                }
                Err(ForecastError::InvalidState(_)) => {}
                Err(e) => {
                    eprintln!("[artifacts] cannot snapshot {}: {e}", key.canonical())
                }
            }
        }
        Ok(())
    }

    /// The dataset for `kind`, generated (and split) at most once. A split
    /// failure (series too short for the 70/10/20 proportions) surfaces as
    /// a [`ScenarioError`] so engine tasks can record it as a per-task
    /// failure instead of aborting the grid.
    pub fn try_dataset(&self, kind: DatasetKind) -> Result<Arc<CachedDataset>, ScenarioError> {
        self.datasets.get_or_try_generate(kind, || {
            let series = self.config.dataset(kind);
            let raw_size = compression::raw_compressed_size(series.target());
            let split = self.config.split(&series)?;
            Ok(CachedDataset { series, split, raw_size })
        })
    }

    /// Panicking convenience wrapper around [`GridContext::try_dataset`]
    /// for callers outside the engine (benches, tests) that run on
    /// configurations known to split cleanly.
    pub fn dataset(&self, kind: DatasetKind) -> Arc<CachedDataset> {
        self.try_dataset(kind).expect("dataset generates and splits cleanly")
    }

    /// The transform `T(subset | method, ε)` for a dataset, computed at
    /// most once per key. [`Subset::Full`] transforms the target channel
    /// of the whole series (the compression grid's measurement); the
    /// split subsets transform every channel (the forecast scenarios').
    pub fn transform(
        &self,
        dataset: DatasetKind,
        subset: Subset,
        method: Method,
        epsilon: f64,
    ) -> Result<Arc<CachedTransform>, ScenarioError> {
        let ds = self.try_dataset(dataset)?;
        let key = TransformKey::new(dataset, subset, method, epsilon);
        self.transforms.get_or_compute(key, || {
            let uni;
            let data: &MultiSeries = match subset {
                Subset::Full => {
                    let name = &ds.series.names()[ds.series.target_index()];
                    uni = MultiSeries::univariate(name, ds.series.target().clone());
                    &uni
                }
                Subset::Train => &ds.split.train,
                Subset::Val => &ds.split.val,
                Subset::Test => &ds.split.test,
            };
            match &self.store {
                Some(backend) => {
                    backend.transform_with_stats(dataset, subset, data, method, epsilon)
                }
                None => transform_with_stats(data, method.compressor().as_ref(), epsilon),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::transform_series;
    use tsdata::series::RegularTimeSeries;

    fn series(n: usize) -> MultiSeries {
        let vals: Vec<f64> =
            (0..n).map(|i| 5.0 + (i as f64 / 16.0 * std::f64::consts::TAU).sin()).collect();
        MultiSeries::univariate("y", RegularTimeSeries::new(0, 60, vals).unwrap())
    }

    #[test]
    fn transform_computed_exactly_once_per_key() {
        let cache = TransformCache::new();
        let data = series(400);
        let key = TransformKey::new(DatasetKind::ETTm1, Subset::Test, Method::Pmc, 0.1);
        let calls = AtomicUsize::new(0);
        for _ in 0..5 {
            let t = cache
                .get_or_compute(key, || {
                    calls.fetch_add(1, Ordering::Relaxed);
                    transform_with_stats(&data, Method::Pmc.compressor().as_ref(), 0.1)
                })
                .unwrap();
            assert_eq!(t.series.len(), data.len());
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_requests_share_one_computation() {
        let cache = TransformCache::new();
        let data = series(600);
        let key = TransformKey::new(DatasetKind::ETTm2, Subset::Val, Method::Sz, 0.05);
        let calls = AtomicUsize::new(0);
        crossbeam::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    cache
                        .get_or_compute(key, || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            transform_with_stats(&data, Method::Sz.compressor().as_ref(), 0.05)
                        })
                        .unwrap()
                });
            }
        })
        .expect("no panics");
        assert_eq!(calls.load(Ordering::Relaxed), 1, "transform must run exactly once");
        assert_eq!(cache.hits() + cache.misses(), 8);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let cache = TransformCache::new();
        let data = series(300);
        for (m, eps) in [(Method::Pmc, 0.1), (Method::Pmc, 0.2), (Method::Swing, 0.1)] {
            let key = TransformKey::new(DatasetKind::Solar, Subset::Test, m, eps);
            cache
                .get_or_compute(key, || transform_with_stats(&data, m.compressor().as_ref(), eps))
                .unwrap();
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn cached_series_matches_direct_transform() {
        let data = series(500);
        let cache = TransformCache::new();
        let key = TransformKey::new(DatasetKind::Wind, Subset::Train, Method::Swing, 0.3);
        let cached = cache
            .get_or_compute(key, || {
                transform_with_stats(&data, Method::Swing.compressor().as_ref(), 0.3)
            })
            .unwrap();
        let direct = transform_series(&data, Method::Swing.compressor().as_ref(), 0.3).unwrap();
        assert_eq!(cached.series.target().values(), direct.target().values());
        assert!(cached.stats.size_bytes > 0);
        assert!(cached.stats.num_segments > 0);
    }

    #[test]
    fn grid_context_shares_datasets_and_transforms() {
        let mut cfg = GridConfig::smoke();
        cfg.len = Some(1_200);
        let ctx = GridContext::new(cfg);
        let a = ctx.dataset(DatasetKind::ETTm1);
        let b = ctx.dataset(DatasetKind::ETTm1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.datasets.misses(), 1);
        assert_eq!(ctx.datasets.hits(), 1);

        let t1 = ctx.transform(DatasetKind::ETTm1, Subset::Test, Method::Pmc, 0.1).unwrap();
        let t2 = ctx.transform(DatasetKind::ETTm1, Subset::Test, Method::Pmc, 0.1).unwrap();
        assert!(Arc::ptr_eq(&t1.series, &t2.series));
        // The cached test transform matches transforming the split directly.
        let direct =
            transform_series(&a.split.test, Method::Pmc.compressor().as_ref(), 0.1).unwrap();
        assert_eq!(t1.series.target().values(), direct.target().values());
        // Full-series transform is a different key with its own entry.
        let full = ctx.transform(DatasetKind::ETTm1, Subset::Full, Method::Pmc, 0.1).unwrap();
        assert_eq!(full.series.len(), a.series.len());
        assert_eq!(ctx.transforms.misses(), 2);
    }

    #[test]
    fn epsilon_round_trips_through_key() {
        let k = TransformKey::new(DatasetKind::ETTm1, Subset::Full, Method::Sz, 0.015);
        assert_eq!(k.epsilon(), 0.015);
        let k2 = TransformKey::new(DatasetKind::ETTm1, Subset::Full, Method::Sz, 0.015);
        assert_eq!(k, k2);
    }
}
