//! # neural — a from-scratch neural-network framework
//!
//! The deep-learning substrate for the paper's five neural forecasters
//! (GRU, NBeats, DLinear, Transformer, Informer):
//!
//! * [`tensor`] — dense row-major 2-D `f64` matrices.
//! * [`kernels`] — cache-blocked, unroll-vectorized matrix kernels
//!   (`A·B`, `A·Bᵀ`, `Aᵀ·B`, tiled transpose) behind the tensor ops.
//! * [`graph`] — define-by-run reverse-mode autodiff on a flat tape, with
//!   a [`graph::ParamStore`] holding parameters and gradients.
//! * [`layers`] — dense, dropout, layer norm, Glorot initialization.
//! * [`rnn`] — GRU cell and sequence unrolling.
//! * [`attention`] — multi-head attention (full and Informer ProbSparse)
//!   plus sinusoidal positional encodings.
//! * [`optim`] — Adam with weight decay and gradient clipping (§3.4).
//! * [`mod@train`] — mini-batch loop with early stopping, patience 3 (§3.4).
//! * [`state`] — flat named-tensor snapshots ([`state::StateDict`]) with
//!   strict `export_state`/`import_state` on stores, layers, and Adam.
//!
//! Every op has finite-difference gradient tests; see `graph::tests`.
//!
//! ```
//! use neural::{Graph, ParamStore, Tensor, Adam, AdamConfig};
//!
//! // Fit w to minimize mean((w - target)^2) with three Adam steps.
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::row(&[0.0]));
//! let target = Tensor::row(&[1.0]);
//! let mut adam = Adam::new(&store, AdamConfig { lr: 0.1, ..Default::default() });
//! let mut last = f64::INFINITY;
//! for _ in 0..3 {
//!     store.zero_grads();
//!     let mut g = Graph::new();
//!     let wi = g.param(&store, w);
//!     let loss = g.mse(wi, &target);
//!     assert!(g.value(loss).get(0, 0) <= last);
//!     last = g.value(loss).get(0, 0);
//!     g.backward(loss, &mut store);
//!     adam.step(&mut store);
//! }
//! assert!(store.value(w).get(0, 0) > 0.0, "w moved toward the target");
//! ```

pub mod attention;
pub mod graph;
pub mod kernels;
pub mod layers;
pub mod optim;
pub mod rnn;
pub mod state;
pub mod tensor;
pub mod train;

pub use attention::{positional_encoding, AttentionKind, MultiHeadAttention};
pub use graph::{Graph, NodeId, ParamId, ParamStore};
pub use layers::{glorot, Activation, Dense, Dropout, LayerNorm};
pub use optim::{Adam, AdamConfig};
pub use rnn::GruCell;
pub use state::{StateDict, StateError};
pub use tensor::Tensor;
pub use train::{train, TrainConfig, TrainReport};
