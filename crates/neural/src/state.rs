//! Flat, named snapshots of model parameters.
//!
//! A [`StateDict`] is an ordered map from parameter names to [`Tensor`]
//! values: the interchange format between fitted models and the artifact
//! store in `evalcore`. Layers export their parameters under the names
//! they registered with the [`ParamStore`] (`"enc.wxz"`, `"head.b"`, ...),
//! and import is strict — shapes must match and no entry may be missing —
//! so a stale or truncated snapshot is rejected instead of silently
//! producing a half-restored model.

use std::collections::HashMap;
use std::fmt;

use crate::graph::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Why a snapshot could not be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum StateError {
    /// The snapshot lacks an entry the target requires.
    Missing(String),
    /// The snapshot holds an entry the target does not know.
    Unexpected(String),
    /// An entry exists but with the wrong dimensions.
    ShapeMismatch {
        /// Offending entry name.
        name: String,
        /// Shape the target requires.
        expected: (usize, usize),
        /// Shape found in the snapshot.
        found: (usize, usize),
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Missing(name) => write!(f, "state entry `{name}` is missing"),
            StateError::Unexpected(name) => write!(f, "unexpected state entry `{name}`"),
            StateError::ShapeMismatch { name, expected, found } => write!(
                f,
                "state entry `{name}` has shape {}x{}, expected {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
        }
    }
}

impl std::error::Error for StateError {}

/// An ordered collection of named tensors.
///
/// Insertion order is preserved so that encoding a dict is deterministic:
/// the same model state always serializes to the same bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateDict {
    entries: Vec<(String, Tensor)>,
    index: HashMap<String, usize>,
}

impl StateDict {
    /// Creates an empty dict.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Adds an entry.
    ///
    /// # Panics
    /// Panics if `name` is already present — duplicate names in a snapshot
    /// are a programming error, not a recoverable condition. Decoders that
    /// read untrusted bytes must check [`StateDict::contains`] first.
    pub fn insert(&mut self, name: &str, value: Tensor) {
        assert!(!self.contains(name), "duplicate state entry `{name}`");
        self.index.insert(name.to_string(), self.entries.len());
        self.entries.push((name.to_string(), value));
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.index.get(name).map(|&i| &self.entries[i].1)
    }

    /// Entries in insertion order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Total scalar count across all entries.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|(_, t)| t.len()).sum()
    }

    /// Fetches `name`, requiring the exact shape `(rows, cols)`.
    pub fn require(&self, name: &str, rows: usize, cols: usize) -> Result<&Tensor, StateError> {
        let t = self.get(name).ok_or_else(|| StateError::Missing(name.to_string()))?;
        if t.shape() != (rows, cols) {
            return Err(StateError::ShapeMismatch {
                name: name.to_string(),
                expected: (rows, cols),
                found: t.shape(),
            });
        }
        Ok(t)
    }
}

/// Snapshots the listed parameters of `store` (names as registered).
pub fn export_params(store: &ParamStore, ids: &[ParamId]) -> StateDict {
    let mut dict = StateDict::new();
    for &id in ids {
        dict.insert(store.name(id), store.value(id).clone());
    }
    dict
}

/// Restores the listed parameters of `store` from `dict`.
///
/// Each parameter must be present under its registered name with a
/// matching shape; entries in `dict` that do not correspond to a listed
/// parameter are ignored (the dict may hold a larger model's state).
pub fn import_params(
    store: &mut ParamStore,
    ids: &[ParamId],
    dict: &StateDict,
) -> Result<(), StateError> {
    // Validate everything before mutating so a failed import leaves the
    // store untouched.
    for &id in ids {
        let (r, c) = store.value(id).shape();
        dict.require(store.name(id), r, c)?;
    }
    for &id in ids {
        let src = dict.get(store.name(id)).expect("validated above").clone();
        *store.value_mut(id) = src;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(names: &[(&str, usize, usize)]) -> (ParamStore, Vec<ParamId>) {
        let mut store = ParamStore::new();
        let ids = names
            .iter()
            .map(|&(n, r, c)| store.add(n, Tensor::full(r, c, (r * c) as f64)))
            .collect();
        (store, ids)
    }

    #[test]
    fn insert_get_roundtrip_preserves_order() {
        let mut dict = StateDict::new();
        dict.insert("b", Tensor::zeros(1, 2));
        dict.insert("a", Tensor::zeros(2, 3));
        assert_eq!(dict.len(), 2);
        assert_eq!(dict.get("a").unwrap().shape(), (2, 3));
        assert!(dict.get("c").is_none());
        let order: Vec<&str> = dict.entries().map(|(n, _)| n).collect();
        assert_eq!(order, ["b", "a"]);
        assert_eq!(dict.num_scalars(), 8);
    }

    #[test]
    #[should_panic(expected = "duplicate state entry")]
    fn duplicate_insert_panics() {
        let mut dict = StateDict::new();
        dict.insert("w", Tensor::zeros(1, 1));
        dict.insert("w", Tensor::zeros(1, 1));
    }

    #[test]
    fn require_checks_shape() {
        let mut dict = StateDict::new();
        dict.insert("w", Tensor::zeros(2, 2));
        assert!(dict.require("w", 2, 2).is_ok());
        assert_eq!(
            dict.require("w", 1, 2),
            Err(StateError::ShapeMismatch { name: "w".into(), expected: (1, 2), found: (2, 2) })
        );
        assert_eq!(dict.require("v", 1, 1), Err(StateError::Missing("v".into())));
    }

    #[test]
    fn export_import_roundtrip() {
        let (store, ids) = store_with(&[("w", 2, 3), ("b", 1, 3)]);
        let dict = export_params(&store, &ids);

        let (mut other, other_ids) = store_with(&[("w", 2, 3), ("b", 1, 3)]);
        for &id in &other_ids {
            other.value_mut(id).data_mut().fill(-1.0);
        }
        import_params(&mut other, &other_ids, &dict).unwrap();
        for (&a, &b) in ids.iter().zip(&other_ids) {
            assert_eq!(store.value(a), other.value(b));
        }
    }

    #[test]
    fn import_rejects_shape_mismatch_without_mutating() {
        let (store, ids) = store_with(&[("w", 2, 3), ("b", 1, 3)]);
        let mut dict = export_params(&store, &ids);
        // Second target has a different "b" shape: import must fail and
        // leave the first (matching) parameter untouched.
        let (mut other, other_ids) = store_with(&[("w", 2, 3), ("b", 1, 4)]);
        let before = other.value(other_ids[0]).clone();
        let err = import_params(&mut other, &other_ids, &dict).unwrap_err();
        assert!(matches!(err, StateError::ShapeMismatch { .. }));
        assert_eq!(other.value(other_ids[0]), &before);

        dict = StateDict::new();
        dict.insert("w", Tensor::zeros(2, 3));
        let err = import_params(&mut other, &other_ids, &dict).unwrap_err();
        assert_eq!(err, StateError::Missing("b".into()));
    }
}
