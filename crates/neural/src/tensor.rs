//! A minimal dense 2-D tensor (row-major `f64`).
//!
//! Everything the forecasting models need — dense layers, GRU cells,
//! attention — is expressible with 2-D matrices plus per-sample loops, so
//! the tensor type stays deliberately simple: a shape `(rows, cols)` and a
//! flat buffer. Higher-rank batching is handled in the layer code.

use std::fmt;

use crate::kernels;

/// A row-major 2-D matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor buffer/shape mismatch");
        Tensor { rows, cols, data }
    }

    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// A `1×n` row vector.
    pub fn row(values: &[f64]) -> Self {
        Tensor { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// An `n×1` column vector.
    pub fn col(values: &[f64]) -> Self {
        Tensor { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable flat buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Allocation-free matrix product: `out = self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch or if `out` is not
    /// `self.rows × other.cols`.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul_into output shape");
        kernels::matmul(&self.data, &other.data, &mut out.data, self.rows, self.cols, other.cols);
    }

    /// Fused multiply-accumulate: `out += self · other`.
    pub fn matmul_acc_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul_acc_into output shape");
        kernels::matmul_acc(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
    }

    /// `self · otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// Allocation-free `out = self · otherᵀ`.
    pub fn matmul_nt_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.shape(), (self.rows, other.rows), "matmul_nt_into output shape");
        kernels::matmul_nt(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.rows,
        );
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.cols, other.cols);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// Allocation-free `out = selfᵀ · other`.
    pub fn matmul_tn_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.shape(), (self.cols, other.cols), "matmul_tn_into output shape");
        kernels::matmul_tn(
            &self.data,
            &other.data,
            &mut out.data,
            self.cols,
            self.rows,
            other.cols,
        );
    }

    /// The pre-optimization scalar matmul (ikj order with a zero-skip
    /// branch). Kept as the correctness oracle for property tests and as
    /// the baseline the kernel benchmarks compare against.
    pub fn reference_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Allocation-free transpose: `out = selfᵀ`.
    pub fn transpose_into(&self, out: &mut Tensor) {
        assert_eq!(out.shape(), (self.cols, self.rows), "transpose_into output shape");
        kernels::transpose(&self.data, &mut out.data, self.rows, self.cols);
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        kernels::axpy(alpha, &other.data, &mut self.data);
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Elementwise combination with an equal-shaped tensor.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale_assign(&mut self, k: f64) {
        for a in self.data.iter_mut() {
            *a *= k;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Extracts rows `start..end` as a new tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.rows, "row slice out of range");
        Tensor {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Extracts columns `start..end` as a new tensor.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.cols, "col slice out of range");
        let mut out = Tensor::zeros(self.rows, end - start);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols + start..r * self.cols + end];
            out.data[r * (end - start)..(r + 1) * (end - start)].copy_from_slice(src);
        }
        out
    }

    /// Stacks `self` above `other` (same column count).
    pub fn vstack(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Tensor { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Concatenates `other`'s columns to the right of `self`'s.
    pub fn hstack(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Tensor::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols]
                .copy_from_slice(&self.data[r * self.cols..(r + 1) * self.cols]);
            out.data[r * cols + self.cols..(r + 1) * cols]
                .copy_from_slice(&other.data[r * other.cols..(r + 1) * other.cols]);
        }
        out
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn bad_shape_panics() {
        Tensor::new(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::new(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::new(2, 2, vec![3.0, -1.0, 2.0, 5.0]);
        let i = Tensor::new(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn map_zip_and_assign() {
        let a = Tensor::new(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::new(1, 3, vec![10.0, 20.0, 30.0]);
        assert_eq!(a.map(|v| v * 2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.zip(&b, |x, y| y - x).data(), &[9.0, 18.0, 27.0]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data(), &[11.0, 22.0, 33.0]);
        c.scale_assign(0.5);
        assert_eq!(c.data(), &[5.5, 11.0, 16.5]);
    }

    #[test]
    fn slices_and_stacks() {
        let a = Tensor::new(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.slice_rows(1, 3).data(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.slice_cols(1, 2).data(), &[2.0, 4.0, 6.0]);
        let b = Tensor::new(1, 2, vec![7.0, 8.0]);
        assert_eq!(a.vstack(&b).rows(), 4);
        let c = Tensor::new(3, 1, vec![9.0, 9.0, 9.0]);
        let h = a.hstack(&c);
        assert_eq!(h.shape(), (3, 3));
        assert_eq!(h.get(0, 2), 9.0);
        assert_eq!(h.get(2, 0), 5.0);
    }

    #[test]
    fn matmul_matches_reference() {
        let a = Tensor::new(3, 4, (0..12).map(|v| v as f64 * 0.25 - 1.0).collect());
        let b = Tensor::new(4, 5, (0..20).map(|v| 2.0 - v as f64 * 0.17).collect());
        let fast = a.matmul(&b);
        let slow = a.reference_matmul(&b);
        assert_eq!(fast.shape(), slow.shape());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn layout_aware_variants_match_explicit_transpose() {
        // Different kernels sum in different orders, so compare with a
        // tolerance rather than bitwise.
        fn assert_close(a: &Tensor, b: &Tensor) {
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
        let a = Tensor::new(3, 4, (0..12).map(|v| (v as f64).sin()).collect());
        let b = Tensor::new(5, 4, (0..20).map(|v| (v as f64).cos()).collect());
        assert_close(&a.matmul_nt(&b), &a.matmul(&b.transpose()));
        let c = Tensor::new(3, 5, (0..15).map(|v| v as f64 - 7.0).collect());
        assert_close(&a.matmul_tn(&c), &a.transpose().matmul(&c));
    }

    #[test]
    fn into_variants_and_axpy() {
        let a = Tensor::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::new(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Tensor::zeros(2, 2);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data(), &[58.0, 64.0, 139.0, 154.0]);
        a.matmul_acc_into(&b, &mut out);
        assert_eq!(out.data(), &[116.0, 128.0, 278.0, 308.0]);

        let mut t = Tensor::zeros(3, 2);
        a.transpose_into(&mut t);
        assert_eq!(t, a.transpose());

        let mut y = Tensor::new(1, 3, vec![1.0, 1.0, 1.0]);
        y.axpy(2.0, &Tensor::new(1, 3, vec![1.0, 2.0, 3.0]));
        assert_eq!(y.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::new(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.norm(), 5.0);
    }
}
