//! Adam optimizer (Kingma & Ba, ICLR 2015) with L2 weight decay and global
//! gradient-norm clipping.
//!
//! The paper trains all deep models with Adam, learning rate `1e-3` and
//! weight decay `1e-4` (§3.4); those are the defaults here.

use crate::graph::ParamStore;
use crate::state::{StateDict, StateError};
use crate::tensor::Tensor;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate (paper default 1e-3).
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
    /// L2 weight decay added to gradients (paper default 1e-4).
    pub weight_decay: f64,
    /// Global gradient-norm clip; `None` disables clipping.
    pub clip_norm: Option<f64>,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 1e-4,
            clip_norm: Some(5.0),
        }
    }
}

/// Adam optimizer state (first/second moments per parameter tensor).
#[derive(Debug)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    /// Creates optimizer state matching the store's parameters.
    pub fn new(store: &ParamStore, config: AdamConfig) -> Self {
        let m = store
            .ids()
            .map(|id| {
                let (r, c) = store.value(id).shape();
                Tensor::zeros(r, c)
            })
            .collect::<Vec<_>>();
        let v = m.clone();
        Adam { config, m, v, t: 0 }
    }

    /// The active configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshots the optimizer state: per-parameter moments under
    /// `adam.m.{name}` / `adam.v.{name}` plus the step counter `adam.t`.
    /// `store` must be the parameter store this optimizer was created for.
    pub fn export_state(&self, store: &ParamStore) -> StateDict {
        let mut dict = StateDict::new();
        dict.insert("adam.t", Tensor::new(1, 1, vec![self.t as f64]));
        for id in store.ids() {
            dict.insert(&format!("adam.m.{}", store.name(id)), self.m[id.0].clone());
            dict.insert(&format!("adam.v.{}", store.name(id)), self.v[id.0].clone());
        }
        dict
    }

    /// Restores the optimizer state from a snapshot produced by
    /// [`Adam::export_state`] against a store with identical parameters.
    pub fn import_state(&mut self, store: &ParamStore, dict: &StateDict) -> Result<(), StateError> {
        let t = dict.require("adam.t", 1, 1)?.get(0, 0);
        let mut m = Vec::with_capacity(self.m.len());
        let mut v = Vec::with_capacity(self.v.len());
        for id in store.ids() {
            let (r, c) = store.value(id).shape();
            m.push(dict.require(&format!("adam.m.{}", store.name(id)), r, c)?.clone());
            v.push(dict.require(&format!("adam.v.{}", store.name(id)), r, c)?.clone());
        }
        self.t = t as u64;
        self.m = m;
        self.v = v;
        Ok(())
    }

    /// Applies one update using the gradients accumulated in `store`, then
    /// leaves the gradients untouched (caller zeroes them next step).
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        if let Some(max_norm) = self.config.clip_norm {
            let norm = store.grad_norm();
            if norm > max_norm && norm > 0.0 {
                store.scale_grads(max_norm / norm);
            }
        }
        let c = self.config;
        let bias1 = 1.0 - c.beta1.powi(self.t as i32);
        let bias2 = 1.0 - c.beta2.powi(self.t as i32);
        for id in store.ids().collect::<Vec<_>>() {
            let i = id.0;
            // Copy out gradient + weight-decay contribution.
            let grad: Vec<f64> = store
                .grad(id)
                .data()
                .iter()
                .zip(store.value(id).data())
                .map(|(&g, &w)| g + c.weight_decay * w)
                .collect();
            let value = store.value_mut(id);
            for (k, &g) in grad.iter().enumerate() {
                let m = &mut self.m[i].data_mut()[k];
                *m = c.beta1 * *m + (1.0 - c.beta1) * g;
                let v = &mut self.v[i].data_mut()[k];
                *v = c.beta2 * *v + (1.0 - c.beta2) * g * g;
                let m_hat = *m / bias1;
                let v_hat = *v / bias2;
                value.data_mut()[k] -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn adam_minimizes_quadratic() {
        // f(w) = mean((w - target)^2)
        let mut store = ParamStore::new();
        let target = Tensor::row(&[3.0, -2.0, 0.5]);
        let w = store.add("w", Tensor::zeros(1, 3));
        let mut adam =
            Adam::new(&store, AdamConfig { lr: 0.05, weight_decay: 0.0, ..Default::default() });
        for _ in 0..500 {
            store.zero_grads();
            let mut g = Graph::new();
            let wi = g.param(&store, w);
            let loss = g.mse(wi, &target);
            g.backward(loss, &mut store);
            adam.step(&mut store);
        }
        for (a, b) in store.value(w).data().iter().zip(target.data()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        // With zero data gradient, weight decay alone should pull weights
        // toward zero.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::row(&[10.0]));
        let mut adam = Adam::new(
            &store,
            AdamConfig { lr: 0.1, weight_decay: 0.1, clip_norm: None, ..Default::default() },
        );
        for _ in 0..200 {
            store.zero_grads(); // gradient stays zero
            adam.step(&mut store);
        }
        assert!(store.value(w).get(0, 0).abs() < 1.0);
    }

    #[test]
    fn clipping_limits_update_magnitude() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::row(&[0.0]));
        let mut adam = Adam::new(
            &store,
            AdamConfig { lr: 1.0, weight_decay: 0.0, clip_norm: Some(1.0), ..Default::default() },
        );
        store.zero_grads();
        // Inject an enormous gradient via a scaled loss.
        let mut g = Graph::new();
        let wi = g.param(&store, w);
        let big = g.scale(wi, 1e6);
        let target = Tensor::row(&[1e6]);
        let loss = g.mse(big, &target);
        g.backward(loss, &mut store);
        assert!(store.grad_norm() > 1e6);
        adam.step(&mut store);
        // Post-clip the Adam step magnitude is at most ~lr.
        assert!(store.value(w).get(0, 0).abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn step_counter_bias_correction() {
        // First step of Adam moves by ~lr regardless of gradient scale.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::row(&[5.0]));
        let mut adam = Adam::new(
            &store,
            AdamConfig { lr: 0.01, weight_decay: 0.0, clip_norm: None, ..Default::default() },
        );
        store.zero_grads();
        let mut g = Graph::new();
        let wi = g.param(&store, w);
        let target = Tensor::row(&[0.0]);
        let loss = g.mse(wi, &target);
        g.backward(loss, &mut store);
        adam.step(&mut store);
        let moved = 5.0 - store.value(w).get(0, 0);
        assert!((moved - 0.01).abs() < 1e-6, "first Adam step {moved}");
    }
}
