//! Cache-blocked matrix micro-kernels behind [`crate::tensor::Tensor`].
//!
//! All kernels operate on raw row-major `f64` slices so they can be reused
//! by allocation-free `_into` tensor methods. Design notes:
//!
//! * **Blocking.** The GEMM kernels tile the shared dimension (`KC`) so
//!   the active panel of `B` stays in L1/L2 across the row sweep, and
//!   process four rows of `A`/`C` per pass so every loaded `B` row is
//!   reused four times.
//! * **Unrolling.** Inner loops are written 4-wide over independent
//!   accumulators; with `f64` this is the shape LLVM autovectorizes into
//!   2×-unrolled AVX/NEON without any intrinsics or `unsafe`.
//! * **Layout-aware variants.** `matmul_nt` (`A·Bᵀ`) and `matmul_tn`
//!   (`Aᵀ·B`) pack the transposed operand into a thread-local scratch
//!   panel and reuse the blocked kernel, so the autodiff backward pass
//!   never allocates a transpose tensor. For narrow outputs the plain
//!   kernel packs a transposed `B` panel and switches to a dot-product
//!   kernel, which beats streaming when `C` rows are too short to
//!   vectorize well.
//!
//! Accumulation (`*_acc`) variants add into `out` instead of overwriting,
//! letting gradient accumulation fuse with the product.

use std::cell::RefCell;

/// Tile size over the shared (`k`) dimension: 256 f64 = 2 KiB per row
/// panel, comfortably inside L1 alongside four `C` rows.
const KC: usize = 256;

/// Register-tile width: 8 f64 accumulators per C row fit in two AVX (or
/// four SSE) registers, times four rows = the whole tile stays enregistered.
const TJ: usize = 8;

/// Below this output width the streaming kernel's inner loop is too short
/// to vectorize; pack `Bᵀ` and use dot products instead.
const NARROW_N: usize = 8;

thread_local! {
    /// Scratch for the packed transposed-`B` panel (reused across calls).
    static PACK_BUF: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    /// Scratch for the transposed operand in `matmul_nt` / `matmul_tn`.
    /// Separate from `PACK_BUF` because the blocked kernel may borrow
    /// that one while a transposed panel is alive.
    static TRANS_BUF: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// 4-wide unrolled dot product.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    assert_eq!(n, y.len(), "dot length mismatch");
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let quads = n / 4;
    for q in 0..quads {
        let i = q * 4;
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    for i in quads * 4..n {
        s0 += x[i] * y[i];
    }
    (s0 + s1) + (s2 + s3)
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `out = A·B` for row-major `A[m×k]`, `B[k×n]`, `out[m×n]`.
pub fn matmul(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    out.fill(0.0);
    matmul_acc(a, b, out, m, k, n);
}

/// `out += A·B`; the blocked/unrolled workhorse behind every `N·N` product.
pub fn matmul_acc(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A buffer size");
    assert_eq!(b.len(), k * n, "B buffer size");
    assert_eq!(out.len(), m * n, "C buffer size");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if n < NARROW_N && k >= 2 * NARROW_N {
        return matmul_acc_packed(a, b, out, m, k, n);
    }

    let mut k0 = 0;
    while k0 < k {
        let kb = KC.min(k - k0);
        let mut i = 0;
        // 4×8 register tile: C values live in `acc` (which LLVM keeps in
        // vector registers) for the whole k-block, so the inner loop does
        // 32 FMAs against 8 B-loads and 4 A-loads with no C traffic.
        while i + 4 <= m {
            let a0 = &a[i * k + k0..i * k + k0 + kb];
            let a1 = &a[(i + 1) * k + k0..(i + 1) * k + k0 + kb];
            let a2 = &a[(i + 2) * k + k0..(i + 2) * k + k0 + kb];
            let a3 = &a[(i + 3) * k + k0..(i + 3) * k + k0 + kb];
            let mut j0 = 0;
            while j0 + TJ <= n {
                let mut acc = [[0.0f64; TJ]; 4];
                for kk in 0..kb {
                    let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                    let brow = &b[(k0 + kk) * n + j0..(k0 + kk) * n + j0 + TJ];
                    for jj in 0..TJ {
                        let bv = brow[jj];
                        acc[0][jj] += x0 * bv;
                        acc[1][jj] += x1 * bv;
                        acc[2][jj] += x2 * bv;
                        acc[3][jj] += x3 * bv;
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let crow = &mut out[(i + r) * n + j0..(i + r) * n + j0 + TJ];
                    for jj in 0..TJ {
                        crow[jj] += acc_row[jj];
                    }
                }
                j0 += TJ;
            }
            // Column remainder (n % 8): stream one row at a time.
            if j0 < n {
                for (r, arow) in [a0, a1, a2, a3].into_iter().enumerate() {
                    let crow = &mut out[(i + r) * n + j0..(i + r) * n + n];
                    for (kk, &x) in arow.iter().enumerate() {
                        let brow = &b[(k0 + kk) * n + j0..(k0 + kk) * n + n];
                        axpy(x, brow, crow);
                    }
                }
            }
            i += 4;
        }
        // Row remainder (m % 4), one row at a time.
        while i < m {
            let arow = &a[i * k + k0..i * k + k0 + kb];
            let crow = &mut out[i * n..(i + 1) * n];
            for (kk, &x) in arow.iter().enumerate() {
                let brow = &b[(k0 + kk) * n..(k0 + kk) * n + n];
                axpy(x, brow, crow);
            }
            i += 1;
        }
        k0 += kb;
    }
}

/// Narrow-output path: packs `Bᵀ` into a thread-local panel so each
/// `C[i][j]` becomes one contiguous dot product.
fn matmul_acc_packed(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    PACK_BUF.with(|buf| {
        let mut bt = buf.borrow_mut();
        bt.clear();
        bt.resize(n * k, 0.0);
        for kk in 0..k {
            let brow = &b[kk * n..(kk + 1) * n];
            for j in 0..n {
                bt[j * k + kk] = brow[j];
            }
        }
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += dot(arow, &bt[j * k..(j + 1) * k]);
            }
        }
    });
}

/// `out = A·Bᵀ` for row-major `A[m×k]`, `B[n×k]`, `out[m×n]`.
///
/// The transpose is packed into a thread-local scratch panel (no
/// allocation after warmup) so the blocked kernel runs at full speed;
/// dot-product and rank-1 formulations that avoid the pack measure 2-4×
/// slower because their inner loops defeat vectorization.
pub fn matmul_nt(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    out.fill(0.0);
    matmul_nt_acc(a, b, out, m, k, n);
}

/// `out += A·Bᵀ` (see [`matmul_nt`]).
pub fn matmul_nt_acc(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A buffer size");
    assert_eq!(b.len(), n * k, "B buffer size");
    assert_eq!(out.len(), m * n, "C buffer size");
    TRANS_BUF.with(|buf| {
        let mut bt = buf.borrow_mut();
        bt.clear();
        bt.resize(k * n, 0.0);
        transpose(b, &mut bt, n, k);
        matmul_acc(a, &bt, out, m, k, n);
    });
}

/// `out = Aᵀ·B` for row-major `A[k×m]`, `B[k×n]`, `out[m×n]`.
///
/// Same pack-then-multiply scheme as [`matmul_nt`].
pub fn matmul_tn(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    out.fill(0.0);
    matmul_tn_acc(a, b, out, m, k, n);
}

/// `out += Aᵀ·B` (see [`matmul_tn`]).
pub fn matmul_tn_acc(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A buffer size");
    assert_eq!(b.len(), k * n, "B buffer size");
    assert_eq!(out.len(), m * n, "C buffer size");
    TRANS_BUF.with(|buf| {
        let mut at = buf.borrow_mut();
        at.clear();
        at.resize(m * k, 0.0);
        transpose(a, &mut at, k, m);
        matmul_acc(&at, b, out, m, k, n);
    });
}

/// Tiled out-of-place transpose: `dst[c][r] = src[r][c]` for row-major
/// `src[rows×cols]`. Tiling keeps both the read and write streams within
/// a cache-line-sized window.
pub fn transpose(src: &[f64], dst: &mut [f64], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols, "src buffer size");
    assert_eq!(dst.len(), rows * cols, "dst buffer size");
    const TILE: usize = 32;
    let mut r0 = 0;
    while r0 < rows {
        let rb = TILE.min(rows - r0);
        let mut c0 = 0;
        while c0 < cols {
            let cb = TILE.min(cols - c0);
            for r in r0..r0 + rb {
                let src_row = &src[r * cols + c0..r * cols + c0 + cb];
                for (dc, &v) in src_row.iter().enumerate() {
                    dst[(c0 + dc) * rows + r] = v;
                }
            }
            c0 += cb;
        }
        r0 += rb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn fill(len: usize, seed: u64) -> Vec<f64> {
        // Small deterministic pseudo-random values in [-1, 1).
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
            })
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= 1e-12 * (1.0 + x.abs().max(y.abs())), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_across_shapes() {
        // Covers 4-row blocks, remainders, k-tiling, and the packed
        // narrow-n path (n < 8 with large k).
        for &(m, k, n) in
            &[(1, 1, 1), (4, 4, 4), (5, 7, 3), (9, 300, 2), (6, 513, 11), (13, 17, 19)]
        {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c = vec![0.0; m * n];
            matmul(&a, &b, &mut c, m, k, n);
            assert_close(&c, &naive(&a, &b, m, k, n));
        }
    }

    #[test]
    fn acc_adds_instead_of_overwriting() {
        let a = fill(6, 3);
        let b = fill(6, 4);
        let mut c = vec![1.0; 4];
        matmul_acc(&a, &b, &mut c, 2, 3, 2);
        let mut expected = naive(&a, &b, 2, 3, 2);
        for e in &mut expected {
            *e += 1.0;
        }
        assert_close(&c, &expected);
    }

    #[test]
    fn nt_and_tn_match_explicit_transposes() {
        let (m, k, n) = (5, 9, 6);
        let a = fill(m * k, 5);
        let bt = fill(n * k, 6); // logical B is bt transposed
        let mut b = vec![0.0; k * n];
        transpose(&bt, &mut b, n, k);
        let mut c_nt = vec![0.0; m * n];
        matmul_nt(&a, &bt, &mut c_nt, m, k, n);
        assert_close(&c_nt, &naive(&a, &b, m, k, n));

        let at = fill(k * m, 7); // logical A is at transposed
        let mut a2 = vec![0.0; m * k];
        transpose(&at, &mut a2, k, m);
        let b2 = fill(k * n, 8);
        let mut c_tn = vec![0.0; m * n];
        matmul_tn(&at, &b2, &mut c_tn, m, k, n);
        assert_close(&c_tn, &naive(&a2, &b2, m, k, n));
    }

    #[test]
    fn transpose_tiled_roundtrip() {
        for &(r, c) in &[(1, 1), (3, 5), (33, 65), (64, 64)] {
            let src = fill(r * c, 9);
            let mut t = vec![0.0; r * c];
            let mut back = vec![0.0; r * c];
            transpose(&src, &mut t, r, c);
            transpose(&t, &mut back, c, r);
            assert_eq!(src, back);
        }
    }

    #[test]
    fn dot_and_axpy() {
        let x = fill(101, 10);
        let y = fill(101, 11);
        let expected: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - expected).abs() < 1e-12);

        let mut acc = y.clone();
        axpy(2.5, &x, &mut acc);
        for i in 0..x.len() {
            assert!((acc[i] - (y[i] + 2.5 * x[i])).abs() < 1e-15);
        }
    }
}
