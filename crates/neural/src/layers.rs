//! Reusable layers: dense (fully connected), dropout, and layer
//! normalization, plus weight initialization.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::graph::{Graph, NodeId, ParamId, ParamStore};
use crate::tensor::Tensor;

/// Activation applied after a dense layer's affine map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No activation.
    Identity,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
}

/// Glorot/Xavier-uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn glorot(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    let data = (0..rows * cols).map(|_| (rng.random::<f64>() * 2.0 - 1.0) * a).collect();
    Tensor::new(rows, cols, data)
}

/// A fully connected layer `y = act(x W + b)`.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight parameter `[in, out]`.
    pub w: ParamId,
    /// Bias parameter `[1, out]`.
    pub b: ParamId,
    /// Post-affine activation.
    pub activation: Activation,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Creates and registers the layer's parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        let w = store.add(&format!("{name}.w"), glorot(in_dim, out_dim, rng));
        let b = store.add(&format!("{name}.b"), Tensor::zeros(1, out_dim));
        Dense { w, b, activation, in_dim, out_dim }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Ids of the layer's parameters, in registration order.
    pub fn param_ids(&self) -> Vec<ParamId> {
        vec![self.w, self.b]
    }

    /// Snapshots the layer's parameters under their registered names.
    pub fn export_state(&self, store: &ParamStore) -> crate::state::StateDict {
        crate::state::export_params(store, &self.param_ids())
    }

    /// Restores the layer's parameters from a snapshot.
    pub fn import_state(
        &self,
        store: &mut ParamStore,
        dict: &crate::state::StateDict,
    ) -> Result<(), crate::state::StateError> {
        crate::state::import_params(store, &self.param_ids(), dict)
    }

    /// Applies the layer within a graph.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let y = g.matmul(x, w);
        let y = g.add_row(y, b);
        match self.activation {
            Activation::Identity => y,
            Activation::Tanh => g.tanh(y),
            Activation::Sigmoid => g.sigmoid(y),
            Activation::Relu => g.relu(y),
        }
    }
}

/// Inverted dropout. During training, zeroes each element with probability
/// `p` and scales survivors by `1/(1-p)`; at inference it is the identity.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f64,
}

impl Dropout {
    /// Creates a dropout layer. `p` outside `[0, 1)` is clamped.
    pub fn new(p: f64) -> Self {
        Dropout { p: p.clamp(0.0, 0.999) }
    }

    /// Applies dropout. `training = false` (or `p == 0`) is a no-op.
    pub fn forward(&self, g: &mut Graph, x: NodeId, training: bool, rng: &mut StdRng) -> NodeId {
        if !training || self.p == 0.0 {
            return x;
        }
        let (r, c) = g.value(x).shape();
        let keep = 1.0 - self.p;
        let mask = Tensor::new(
            r,
            c,
            (0..r * c).map(|_| if rng.random::<f64>() < keep { 1.0 / keep } else { 0.0 }).collect(),
        );
        g.dropout(x, mask)
    }
}

/// Layer normalization with learned gain and bias.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Gain `[1, dim]`, initialized to ones.
    pub gamma: ParamId,
    /// Bias `[1, dim]`, initialized to zeros.
    pub beta: ParamId,
}

impl LayerNorm {
    /// Registers gain/bias parameters for feature dimension `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add(&format!("{name}.gamma"), Tensor::full(1, dim, 1.0));
        let beta = store.add(&format!("{name}.beta"), Tensor::zeros(1, dim));
        LayerNorm { gamma, beta }
    }

    /// Ids of the layer's parameters, in registration order.
    pub fn param_ids(&self) -> Vec<ParamId> {
        vec![self.gamma, self.beta]
    }

    /// Snapshots the layer's parameters under their registered names.
    pub fn export_state(&self, store: &ParamStore) -> crate::state::StateDict {
        crate::state::export_params(store, &self.param_ids())
    }

    /// Restores the layer's parameters from a snapshot.
    pub fn import_state(
        &self,
        store: &mut ParamStore,
        dict: &crate::state::StateDict,
    ) -> Result<(), crate::state::StateError> {
        crate::state::import_params(store, &self.param_ids(), dict)
    }

    /// Applies row-wise layer normalization.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let gamma = g.param(store, self.gamma);
        let beta = g.param(store, self.beta);
        g.layer_norm(x, gamma, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn glorot_range() {
        let t = glorot(100, 50, &mut rng());
        let a = (6.0 / 150.0f64).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= a));
        // not degenerate
        assert!(t.data().iter().any(|&v| v.abs() > a / 10.0));
    }

    #[test]
    fn dense_shapes_and_activation() {
        let mut store = ParamStore::new();
        let d = Dense::new(&mut store, "d", 3, 2, Activation::Relu, &mut rng());
        assert_eq!(d.in_dim(), 3);
        assert_eq!(d.out_dim(), 2);
        let mut g = Graph::new();
        let x = g.input(Tensor::new(4, 3, vec![0.5; 12]));
        let y = d.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (4, 2));
        assert!(g.value(y).data().iter().all(|&v| v >= 0.0), "relu output");
    }

    #[test]
    fn dense_trains_linear_map() {
        // One dense layer should fit y = 2x - 1 quickly with plain SGD.
        let mut store = ParamStore::new();
        let d = Dense::new(&mut store, "d", 1, 1, Activation::Identity, &mut rng());
        let xs = Tensor::col(&[-1.0, -0.5, 0.0, 0.5, 1.0]);
        let ts = xs.map(|x| 2.0 * x - 1.0);
        for _ in 0..500 {
            store.zero_grads();
            let mut g = Graph::new();
            let x = g.input(xs.clone());
            let y = d.forward(&mut g, &store, x);
            let loss = g.mse(y, &ts);
            g.backward(loss, &mut store);
            for id in store.ids().collect::<Vec<_>>() {
                let grad = store.grad(id).clone();
                let v = store.value_mut(id);
                for (p, g) in v.data_mut().iter_mut().zip(grad.data()) {
                    *p -= 0.1 * g;
                }
            }
        }
        assert!((store.value(d.w).get(0, 0) - 2.0).abs() < 1e-3);
        assert!((store.value(d.b).get(0, 0) + 1.0).abs() < 1e-3);
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut g = Graph::new();
        let x = g.input(Tensor::row(&[1.0, 2.0, 3.0]));
        let d = Dropout::new(0.5);
        let y = d.forward(&mut g, x, false, &mut rng());
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_training_preserves_expectation() {
        let mut r = rng();
        let mut g = Graph::new();
        let n = 10_000;
        let x = g.input(Tensor::full(1, n, 1.0));
        let d = Dropout::new(0.3);
        let y = d.forward(&mut g, x, true, &mut r);
        let mean = g.value(y).sum() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout mean {mean}");
        let zeros = g.value(y).data().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f64 / n as f64 - 0.3).abs() < 0.05);
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut g = Graph::new();
        let x = g.input(Tensor::new(2, 4, vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0]));
        let y = ln.forward(&mut g, &store, x);
        let v = g.value(y);
        for r in 0..2 {
            let mean: f64 = (0..4).map(|j| v.get(r, j)).sum::<f64>() / 4.0;
            let var: f64 = (0..4).map(|j| (v.get(r, j) - mean).powi(2)).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }
}
