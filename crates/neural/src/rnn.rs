//! Gated Recurrent Unit cell (Cho et al. 2014), the recurrent substrate of
//! the paper's encoder-decoder GRU forecaster.

use rand::rngs::StdRng;

use crate::graph::{Graph, NodeId, ParamId, ParamStore};
use crate::layers::glorot;
use crate::tensor::Tensor;

/// A GRU cell with input size `in_dim` and state size `hidden`.
///
/// Update equations (batch-major, `x: [n, in]`, `h: [n, hidden]`):
///
/// ```text
/// z = σ(x·Wxz + h·Whz + bz)          update gate
/// r = σ(x·Wxr + h·Whr + br)          reset gate
/// ĥ = tanh(x·Wxh + (r⊙h)·Whh + bh)   candidate state
/// h' = (1 − z)⊙h + z⊙ĥ
/// ```
#[derive(Debug, Clone)]
pub struct GruCell {
    wxz: ParamId,
    whz: ParamId,
    bz: ParamId,
    wxr: ParamId,
    whr: ParamId,
    br: ParamId,
    wxh: ParamId,
    whh: ParamId,
    bh: ParamId,
    in_dim: usize,
    hidden: usize,
}

impl GruCell {
    /// Registers the cell's nine parameter tensors.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mut mk = |suffix: &str, r: usize, c: usize, rng: &mut StdRng| {
            store.add(&format!("{name}.{suffix}"), glorot(r, c, rng))
        };
        let wxz = mk("wxz", in_dim, hidden, rng);
        let whz = mk("whz", hidden, hidden, rng);
        let wxr = mk("wxr", in_dim, hidden, rng);
        let whr = mk("whr", hidden, hidden, rng);
        let wxh = mk("wxh", in_dim, hidden, rng);
        let whh = mk("whh", hidden, hidden, rng);
        let bz = store.add(&format!("{name}.bz"), Tensor::zeros(1, hidden));
        let br = store.add(&format!("{name}.br"), Tensor::zeros(1, hidden));
        let bh = store.add(&format!("{name}.bh"), Tensor::zeros(1, hidden));
        GruCell { wxz, whz, bz, wxr, whr, br, wxh, whh, bh, in_dim, hidden }
    }

    /// State width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Ids of the cell's parameters, in registration order.
    pub fn param_ids(&self) -> Vec<ParamId> {
        vec![self.wxz, self.whz, self.wxr, self.whr, self.wxh, self.whh, self.bz, self.br, self.bh]
    }

    /// Snapshots the cell's parameters under their registered names.
    pub fn export_state(&self, store: &ParamStore) -> crate::state::StateDict {
        crate::state::export_params(store, &self.param_ids())
    }

    /// Restores the cell's parameters from a snapshot.
    pub fn import_state(
        &self,
        store: &mut ParamStore,
        dict: &crate::state::StateDict,
    ) -> Result<(), crate::state::StateError> {
        crate::state::import_params(store, &self.param_ids(), dict)
    }

    /// One recurrence step: `(x_t, h_{t-1}) -> h_t`.
    pub fn step(&self, g: &mut Graph, store: &ParamStore, x: NodeId, h: NodeId) -> NodeId {
        let nodes = self.param_nodes(g, store);
        self.step_with(g, &nodes, x, h)
    }

    /// The cell's nine parameters as graph nodes, in the order
    /// [`Self::step_with`] expects. Hoist this out of the time loop: a
    /// parameter node's value is a copy of the stored tensor, so cloning
    /// it once per graph instead of once per step changes nothing
    /// numerically (reuses of one node accumulate adjoints in the same
    /// reverse-step order that per-step clones flushed to the store).
    pub fn param_nodes(&self, g: &mut Graph, store: &ParamStore) -> [NodeId; 9] {
        [
            g.param(store, self.wxz),
            g.param(store, self.whz),
            g.param(store, self.bz),
            g.param(store, self.wxr),
            g.param(store, self.whr),
            g.param(store, self.br),
            g.param(store, self.wxh),
            g.param(store, self.whh),
            g.param(store, self.bh),
        ]
    }

    /// [`Self::step`] against pre-built parameter nodes.
    pub fn step_with(&self, g: &mut Graph, p: &[NodeId; 9], x: NodeId, h: NodeId) -> NodeId {
        let [wxz, whz, bz, wxr, whr, br, wxh, whh, bh] = *p;
        let gate = |g: &mut Graph, wxn: NodeId, whn: NodeId, bn: NodeId, x, h| {
            let xm = g.matmul(x, wxn);
            let hm = g.matmul(h, whn);
            let s = g.add(xm, hm);
            g.add_row(s, bn)
        };
        let z_lin = gate(g, wxz, whz, bz, x, h);
        let z = g.sigmoid(z_lin);
        let r_lin = gate(g, wxr, whr, br, x, h);
        let r = g.sigmoid(r_lin);

        let rh = g.mul(r, h);
        let xm = g.matmul(x, wxh);
        let hm = g.matmul(rh, whh);
        let cand_lin = g.add(xm, hm);
        let cand_lin = g.add_row(cand_lin, bh);
        let cand = g.tanh(cand_lin);

        let omz = g.one_minus(z);
        let keep = g.mul(omz, h);
        let update = g.mul(z, cand);
        g.add(keep, update)
    }

    /// Runs the cell over a sequence of `[n, in]` inputs, returning every
    /// hidden state. `h0` defaults to zeros when `None`.
    pub fn run(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        xs: &[NodeId],
        h0: Option<NodeId>,
    ) -> Vec<NodeId> {
        assert!(!xs.is_empty(), "GRU needs at least one step");
        let n = g.value(xs[0]).rows();
        let mut h = h0.unwrap_or_else(|| g.input(Tensor::zeros(n, self.hidden)));
        let nodes = self.param_nodes(g, store);
        let mut states = Vec::with_capacity(xs.len());
        for &x in xs {
            h = self.step_with(g, &nodes, x, h);
            states.push(h);
        }
        states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, AdamConfig};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn step_shapes() {
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 3, 5, &mut rng());
        assert_eq!(cell.in_dim(), 3);
        assert_eq!(cell.hidden(), 5);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(4, 3));
        let h = g.input(Tensor::zeros(4, 5));
        let h2 = cell.step(&mut g, &store, x, h);
        assert_eq!(g.value(h2).shape(), (4, 5));
    }

    #[test]
    fn zero_input_zero_state_stays_bounded() {
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 2, 4, &mut rng());
        let mut g = Graph::new();
        let xs: Vec<_> = (0..10).map(|_| g.input(Tensor::zeros(1, 2))).collect();
        let states = cell.run(&mut g, &store, &xs, None);
        assert_eq!(states.len(), 10);
        for s in states {
            assert!(g.value(s).data().iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn gradcheck_through_two_steps() {
        // Finite-difference check of a 2-step GRU unroll.
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 2, 3, &mut rng());
        let x1 = Tensor::new(1, 2, vec![0.5, -0.3]);
        let x2 = Tensor::new(1, 2, vec![-0.2, 0.8]);
        let t = Tensor::new(1, 3, vec![0.1, -0.1, 0.2]);
        let build = |g: &mut Graph, s: &ParamStore| {
            let a = g.input(x1.clone());
            let b = g.input(x2.clone());
            let states = cell.run(g, s, &[a, b], None);
            g.mse(*states.last().expect("two steps"), &t)
        };
        store.zero_grads();
        let mut g = Graph::new();
        let loss = build(&mut g, &store);
        g.backward(loss, &mut store);
        let auto: Vec<f64> = store.ids().flat_map(|id| store.grad(id).data().to_vec()).collect();

        let h = 1e-6;
        let mut k_global = 0;
        for id in store.ids().collect::<Vec<_>>() {
            for k in 0..store.value(id).len() {
                let orig = store.value(id).data()[k];
                store.value_mut(id).data_mut()[k] = orig + h;
                let mut g1 = Graph::new();
                let l1 = build(&mut g1, &store);
                let f1 = g1.value(l1).get(0, 0);
                store.value_mut(id).data_mut()[k] = orig - h;
                let mut g2 = Graph::new();
                let l2 = build(&mut g2, &store);
                let f2 = g2.value(l2).get(0, 0);
                store.value_mut(id).data_mut()[k] = orig;
                let num = (f1 - f2) / (2.0 * h);
                assert!(
                    (num - auto[k_global]).abs() < 1e-5 * (1.0 + num.abs()),
                    "grad mismatch at {k_global}: {num} vs {}",
                    auto[k_global]
                );
                k_global += 1;
            }
        }
    }

    #[test]
    fn gru_learns_to_remember_first_input() {
        // Task: output the first element of a 4-step sequence — requires
        // the gates to retain state.
        let mut r = rng();
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 1, 8, &mut r);
        let head = crate::layers::Dense::new(
            &mut store,
            "head",
            8,
            1,
            crate::layers::Activation::Identity,
            &mut r,
        );
        let mut adam =
            Adam::new(&store, AdamConfig { lr: 0.02, weight_decay: 0.0, ..Default::default() });
        use rand::RngExt;
        let mut last_loss = f64::INFINITY;
        for epoch in 0..300 {
            store.zero_grads();
            let mut g = Graph::new();
            let batch = 16;
            let firsts: Vec<f64> = (0..batch).map(|_| r.random::<f64>() * 2.0 - 1.0).collect();
            let xs: Vec<NodeId> = (0..4)
                .map(|t| {
                    let col: Vec<f64> = if t == 0 {
                        firsts.clone()
                    } else {
                        (0..batch).map(|_| r.random::<f64>() * 2.0 - 1.0).collect()
                    };
                    g.input(Tensor::col(&col))
                })
                .collect();
            let states = cell.run(&mut g, &store, &xs, None);
            let y = head.forward(&mut g, &store, *states.last().expect("4 steps"));
            let target = Tensor::col(&firsts);
            let loss = g.mse(y, &target);
            last_loss = g.value(loss).get(0, 0);
            g.backward(loss, &mut store);
            adam.step(&mut store);
            let _ = epoch;
        }
        assert!(last_loss < 0.05, "GRU failed to learn memory task: {last_loss}");
    }
}
