//! Scaled dot-product attention, multi-head attention, and Informer's
//! ProbSparse variant.
//!
//! Attention operates per sample: inputs are `[seq, d_model]` matrices, and
//! the layer code loops over the batch (batches are small in this workload,
//! and per-sample graphs keep the 2-D tensor substrate simple).

use rand::rngs::StdRng;

use crate::graph::{Graph, NodeId, ParamId, ParamStore};
use crate::layers::glorot;
use crate::tensor::Tensor;

/// Multi-head attention with optional ProbSparse query selection.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    wo: ParamId,
    heads: usize,
    d_model: usize,
    d_head: usize,
}

/// Which attention to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionKind {
    /// Full softmax attention (Transformer).
    Full,
    /// Informer's ProbSparse self-attention: only the `ceil(c·ln L)` most
    /// informative queries attend; the rest fall back to uniform attention
    /// over values (≈ the running mean of V the Informer paper uses).
    ProbSparse {
        /// Sampling factor `c` (Informer default 5).
        factor: usize,
    },
}

impl MultiHeadAttention {
    /// Registers projection weights. `d_model` must be divisible by
    /// `heads`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_model: usize,
        heads: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            heads > 0 && d_model.is_multiple_of(heads),
            "d_model {d_model} not divisible by {heads}"
        );
        let wq = store.add(&format!("{name}.wq"), glorot(d_model, d_model, rng));
        let wk = store.add(&format!("{name}.wk"), glorot(d_model, d_model, rng));
        let wv = store.add(&format!("{name}.wv"), glorot(d_model, d_model, rng));
        let wo = store.add(&format!("{name}.wo"), glorot(d_model, d_model, rng));
        MultiHeadAttention { wq, wk, wv, wo, heads, d_model, d_head: d_model / heads }
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Ids of the projection parameters, in registration order.
    pub fn param_ids(&self) -> Vec<ParamId> {
        vec![self.wq, self.wk, self.wv, self.wo]
    }

    /// Snapshots the projections under their registered names.
    pub fn export_state(&self, store: &ParamStore) -> crate::state::StateDict {
        crate::state::export_params(store, &self.param_ids())
    }

    /// Restores the projections from a snapshot.
    pub fn import_state(
        &self,
        store: &mut ParamStore,
        dict: &crate::state::StateDict,
    ) -> Result<(), crate::state::StateError> {
        crate::state::import_params(store, &self.param_ids(), dict)
    }

    /// Applies attention for one sample.
    ///
    /// `q_in: [Lq, d_model]`, `k_in`/`v_in`: `[Lk, d_model]`.
    /// `causal` masks future key positions (decoder self-attention).
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        q_in: NodeId,
        k_in: NodeId,
        v_in: NodeId,
        kind: AttentionKind,
        causal: bool,
    ) -> NodeId {
        let lq = g.value(q_in).rows();
        let lk = g.value(k_in).rows();
        let wq = g.param(store, self.wq);
        let wk = g.param(store, self.wk);
        let wv = g.param(store, self.wv);
        let q = g.matmul(q_in, wq);
        let k = g.matmul(k_in, wk);
        let v = g.matmul(v_in, wv);

        let mut heads_out: Option<NodeId> = None;
        for h in 0..self.heads {
            let (s, e) = (h * self.d_head, (h + 1) * self.d_head);
            let qh = g.slice_cols(q, s, e);
            let kh = g.slice_cols(k, s, e);
            let vh = g.slice_cols(v, s, e);
            let kt = g.transpose(kh);
            let scores = g.matmul(qh, kt);
            let mut scores = g.scale(scores, 1.0 / (self.d_head as f64).sqrt());

            // ProbSparse: zero the score rows of "lazy" queries so their
            // softmax is uniform (mean over V), matching Informer's
            // fallback for unselected queries.
            if let AttentionKind::ProbSparse { factor } = kind {
                let u = ((factor as f64) * (lk.max(2) as f64).ln()).ceil() as usize;
                if u < lq {
                    let mask = sparse_query_mask(g.value(scores), u);
                    let mask_node = g.input(mask);
                    scores = g.mul(scores, mask_node);
                }
            }
            if causal {
                let mask_node = g.input(causal_mask(lq, lk));
                scores = g.add(scores, mask_node);
            }
            let attn = g.softmax_rows(scores);
            let out = g.matmul(attn, vh);
            heads_out = Some(match heads_out {
                None => out,
                Some(prev) => g.hstack(prev, out),
            });
        }
        let concat = heads_out.expect("at least one head");
        let wo = g.param(store, self.wo);
        g.matmul(concat, wo)
    }

    /// Applies attention for `n` samples stacked row-wise: sample `i`'s
    /// queries occupy rows `i·lq..(i+1)·lq` of `q_in` (`[n·lq, d_model]`),
    /// its keys/values rows `i·lk..(i+1)·lk` of `k_in`/`v_in`.
    ///
    /// The Q/K/V projections and the output mix run as single stacked
    /// matmuls over all samples — the `[B·L, d]·[d, d]` shape the blocked
    /// kernels want — while the score/softmax/value-mix stage stays
    /// per-sample (scores are sample-local by definition, and ProbSparse's
    /// query selection reads the realized score values). Constant inputs
    /// (the causal mask) are built once and shared across samples and
    /// heads. Every row of the result is bitwise identical to
    /// [`MultiHeadAttention::forward`] on that sample alone: the matmuls
    /// contract over at most `d_model` or `lk` elements, within one
    /// k-block of the blocked kernels, so each output row depends only on
    /// its own input row.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_stacked(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        q_in: NodeId,
        k_in: NodeId,
        v_in: NodeId,
        kind: AttentionKind,
        causal: bool,
        n: usize,
    ) -> NodeId {
        assert!(n > 0, "stacked attention needs at least one sample");
        let (q_rows, k_rows) = (g.value(q_in).rows(), g.value(k_in).rows());
        assert!(
            q_rows.is_multiple_of(n) && k_rows.is_multiple_of(n),
            "stacked rows ({q_rows}, {k_rows}) not divisible by {n} samples"
        );
        let lq = q_rows / n;
        let lk = k_rows / n;
        let wq = g.param(store, self.wq);
        let wk = g.param(store, self.wk);
        let wv = g.param(store, self.wv);
        let q = g.matmul(q_in, wq);
        let k = g.matmul(k_in, wk);
        let v = g.matmul(v_in, wv);
        // One causal mask input tiled over all samples, shared by every head.
        let causal_node = causal.then(|| {
            let one = causal_mask(lq, lk);
            let mut data = Vec::with_capacity(n * one.len());
            for _ in 0..n {
                data.extend_from_slice(one.data());
            }
            g.input(Tensor::new(n * lq, lk, data))
        });

        let mut heads_out: Option<NodeId> = None;
        for h in 0..self.heads {
            let (s, e) = (h * self.d_head, (h + 1) * self.d_head);
            let qh = g.slice_cols(q, s, e);
            let kh = g.slice_cols(k, s, e);
            let vh = g.slice_cols(v, s, e);
            let scores = g.batch_matmul_nt(qh, kh, n);
            let mut scores = g.scale(scores, 1.0 / (self.d_head as f64).sqrt());
            if let AttentionKind::ProbSparse { factor } = kind {
                let u = ((factor as f64) * (lk.max(2) as f64).ln()).ceil() as usize;
                if u < lq {
                    let mask = sparse_query_mask_stacked(g.value(scores), u, n);
                    let mask_node = g.input(mask);
                    scores = g.mul(scores, mask_node);
                }
            }
            if let Some(mask_node) = causal_node {
                scores = g.add(scores, mask_node);
            }
            let attn = g.softmax_rows(scores);
            let out = g.batch_matmul(attn, vh, n);
            heads_out = Some(match heads_out {
                None => out,
                Some(prev) => g.hstack(prev, out),
            });
        }
        let concat = heads_out.expect("at least one head");
        let wo = g.param(store, self.wo);
        g.matmul(concat, wo)
    }
}

/// The right-aligned causal mask added to attention scores: position `r`
/// may attend keys `0..=r+offset` where `offset = lk - min(lq, lk)`
/// (queries may be shorter than keys when the decoder attends over
/// label + horizon positions).
fn causal_mask(lq: usize, lk: usize) -> Tensor {
    let mut m = Tensor::zeros(lq, lk);
    let offset = lk - lq.min(lk);
    for r in 0..lq {
        let masked_from = (r + offset + 1).min(lk);
        m.data_mut()[r * lk + masked_from..(r + 1) * lk].fill(-1e9);
    }
    m
}

/// Builds a 0/1 mask keeping the `u` query rows with the largest sparsity
/// measure `M(q) = max_j s_qj − mean_j s_qj` (Informer Eq. 4).
fn sparse_query_mask(scores: &Tensor, u: usize) -> Tensor {
    let (lq, lk) = scores.shape();
    let mut measures: Vec<(usize, f64)> = (0..lq)
        .map(|r| {
            let row = &scores.data()[r * lk..(r + 1) * lk];
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mean = row.iter().sum::<f64>() / lk as f64;
            (r, max - mean)
        })
        .collect();
    measures.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    let mut mask = Tensor::zeros(lq, lk);
    for &(r, _) in measures.iter().take(u) {
        mask.data_mut()[r * lk..(r + 1) * lk].fill(1.0);
    }
    mask
}

/// [`sparse_query_mask`] applied per sample block of a stacked `[n·lq,
/// lk]` score matrix: each block's query selection sees exactly the
/// scores the per-sample path would, so the mask rows are identical.
fn sparse_query_mask_stacked(scores: &Tensor, u: usize, n: usize) -> Tensor {
    let (rows, lk) = scores.shape();
    let lq = rows / n;
    let mut mask = Tensor::zeros(rows, lk);
    for i in 0..n {
        let blk = Tensor::new(lq, lk, scores.data()[i * lq * lk..(i + 1) * lq * lk].to_vec());
        let m = sparse_query_mask(&blk, u);
        mask.data_mut()[i * lq * lk..(i + 1) * lq * lk].copy_from_slice(m.data());
    }
    mask
}

/// `n` vertically tiled copies of [`positional_encoding`]: the additive
/// term for a stacked batch of `n` length-`len` sequences, computed once
/// per batch instead of once per sample (the `powf` grid is the expensive
/// part, and it is identical for every sample).
pub fn positional_encoding_tiled(len: usize, d_model: usize, n: usize) -> Tensor {
    let pe = positional_encoding(len, d_model);
    let mut data = Vec::with_capacity(n * pe.len());
    for _ in 0..n {
        data.extend_from_slice(pe.data());
    }
    Tensor::new(n * len, d_model, data)
}

/// Sinusoidal positional encoding `[len, d_model]` (Vaswani et al. 2017).
pub fn positional_encoding(len: usize, d_model: usize) -> Tensor {
    let mut pe = Tensor::zeros(len, d_model);
    for pos in 0..len {
        for i in 0..d_model {
            let angle = pos as f64 / 10_000f64.powf((2 * (i / 2)) as f64 / d_model as f64);
            pe.set(pos, i, if i % 2 == 0 { angle.sin() } else { angle.cos() });
        }
    }
    pe
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn output_shape_matches_query_length() {
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "attn", 8, 2, &mut rng());
        let mut g = Graph::new();
        let q = g.input(Tensor::zeros(5, 8));
        let kv = g.input(Tensor::zeros(12, 8));
        let out = mha.forward(&mut g, &store, q, kv, kv, AttentionKind::Full, false);
        assert_eq!(g.value(out).shape(), (5, 8));
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_heads_panic() {
        let mut store = ParamStore::new();
        MultiHeadAttention::new(&mut store, "attn", 7, 2, &mut rng());
    }

    #[test]
    fn attention_rows_sum_to_one_effect() {
        // With identical value rows, any softmax weighting returns that row:
        // a direct consequence of rows summing to 1.
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "attn", 4, 1, &mut rng());
        let mut g = Graph::new();
        let q = g.input(Tensor::new(3, 4, vec![0.5; 12]));
        let kv_data: Vec<f64> = (0..6).flat_map(|_| vec![1.0, -1.0, 2.0, 0.0]).collect();
        let kv = g.input(Tensor::new(6, 4, kv_data));
        let out = mha.forward(&mut g, &store, q, kv, kv, AttentionKind::Full, false);
        // All value rows are equal, so out rows must be equal too.
        let v = g.value(out);
        for r in 1..3 {
            for c in 0..4 {
                assert!((v.get(r, c) - v.get(0, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn causal_mask_blocks_future() {
        // With a causal mask, changing a *future* key/value row must not
        // change earlier outputs.
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "attn", 4, 1, &mut rng());
        let base: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut altered = base.clone();
        for v in altered[12..16].iter_mut() {
            *v += 5.0; // perturb the last key/value row
        }
        let run = |data: Vec<f64>| {
            let mut g = Graph::new();
            let x = g.input(Tensor::new(4, 4, data));
            let out = mha.forward(&mut g, &store, x, x, x, AttentionKind::Full, true);
            g.value(out).slice_rows(0, 3).clone()
        };
        let a = run(base);
        let b = run(altered);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-9, "causal leak: {x} vs {y}");
        }
    }

    #[test]
    fn probsparse_differs_from_full_on_long_sequences() {
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "attn", 4, 1, &mut rng());
        let data: Vec<f64> = (0..128).map(|i| ((i * 31 % 17) as f64 - 8.0) / 8.0).collect();
        let mut g = Graph::new();
        let x = g.input(Tensor::new(32, 4, data));
        let full = mha.forward(&mut g, &store, x, x, x, AttentionKind::Full, false);
        let sparse =
            mha.forward(&mut g, &store, x, x, x, AttentionKind::ProbSparse { factor: 1 }, false);
        assert_eq!(g.value(full).shape(), g.value(sparse).shape());
        let diff: f64 = g
            .value(full)
            .data()
            .iter()
            .zip(g.value(sparse).data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "ProbSparse should deviate from full attention");
    }

    #[test]
    fn sparse_mask_keeps_top_u_rows() {
        let scores = Tensor::new(3, 3, vec![5.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 9.0]);
        let mask = sparse_query_mask(&scores, 2);
        // Rows 0 and 2 have high max-mean; row 1 is uniform (measure 0).
        assert_eq!(mask.get(0, 0), 1.0);
        assert_eq!(mask.get(1, 0), 0.0);
        assert_eq!(mask.get(2, 2), 1.0);
    }

    #[test]
    fn stacked_forward_matches_per_sample_forward_bitwise() {
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "attn", 8, 2, &mut rng());
        let n = 3;
        let (lq, lk) = (5, 9);
        let qd: Vec<f64> = (0..n * lq * 8).map(|i| ((i * 37 % 23) as f64 - 11.0) / 7.0).collect();
        let kd: Vec<f64> = (0..n * lk * 8).map(|i| ((i * 13 % 31) as f64 - 15.0) / 9.0).collect();
        for (kind, causal) in [
            (AttentionKind::Full, false),
            (AttentionKind::Full, true),
            (AttentionKind::ProbSparse { factor: 1 }, false),
        ] {
            let mut g = Graph::new();
            let q = g.input(Tensor::new(n * lq, 8, qd.clone()));
            let kv = g.input(Tensor::new(n * lk, 8, kd.clone()));
            let stacked = mha.forward_stacked(&mut g, &store, q, kv, kv, kind, causal, n);
            let stacked_val = g.value(stacked).clone();
            assert_eq!(stacked_val.shape(), (n * lq, 8));
            for i in 0..n {
                let mut g1 = Graph::new();
                let qi = g1.input(Tensor::new(lq, 8, qd[i * lq * 8..(i + 1) * lq * 8].to_vec()));
                let kvi = g1.input(Tensor::new(lk, 8, kd[i * lk * 8..(i + 1) * lk * 8].to_vec()));
                let one = mha.forward(&mut g1, &store, qi, kvi, kvi, kind, causal);
                assert_eq!(
                    g1.value(one).data(),
                    &stacked_val.data()[i * lq * 8..(i + 1) * lq * 8],
                    "sample {i} diverged under {kind:?} causal={causal}"
                );
            }
        }
    }

    #[test]
    fn tiled_positional_encoding_repeats_the_single_table() {
        let one = positional_encoding(7, 6);
        let tiled = positional_encoding_tiled(7, 6, 3);
        assert_eq!(tiled.shape(), (21, 6));
        for i in 0..3 {
            assert_eq!(&tiled.data()[i * 42..(i + 1) * 42], one.data());
        }
    }

    #[test]
    fn positional_encoding_properties() {
        let pe = positional_encoding(16, 8);
        assert_eq!(pe.shape(), (16, 8));
        // First position: sin(0)=0, cos(0)=1 alternating.
        assert_eq!(pe.get(0, 0), 0.0);
        assert_eq!(pe.get(0, 1), 1.0);
        assert!(pe.data().iter().all(|v| v.abs() <= 1.0));
        // Distinct positions get distinct encodings.
        assert_ne!(pe.slice_rows(1, 2).data(), pe.slice_rows(2, 3).data());
    }

    #[test]
    fn attention_is_differentiable() {
        // End-to-end: gradients flow into all four projections.
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "attn", 4, 2, &mut rng());
        store.zero_grads();
        let mut g = Graph::new();
        let x = g.input(Tensor::new(3, 4, (0..12).map(|i| i as f64 * 0.1).collect()));
        let out = mha.forward(&mut g, &store, x, x, x, AttentionKind::Full, false);
        let target = Tensor::zeros(3, 4);
        let loss = g.mse(out, &target);
        g.backward(loss, &mut store);
        for id in store.ids() {
            assert!(store.grad(id).norm() > 0.0, "no grad for {}", store.name(id));
        }
    }
}
