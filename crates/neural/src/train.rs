//! Mini-batch training loop with validation-based early stopping.
//!
//! Matches §3.4 of the paper: Adam (lr 1e-3, weight decay 1e-4), early
//! stopping on the validation subset with patience 3, and seeded
//! initialization so repeated runs with different seeds average out
//! initialization noise (§3.6).

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

use crate::graph::{Graph, NodeId, ParamStore};
use crate::optim::{Adam, AdamConfig};
use crate::tensor::Tensor;

/// Training-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Early-stopping patience (paper: 3).
    pub patience: usize,
    /// Optimizer settings.
    pub adam: AdamConfig,
    /// Shuffling / dropout seed.
    pub seed: u64,
    /// Model name used as the `model` label on training telemetry
    /// (epoch durations and loss gauges). Purely observational.
    pub model: &'static str,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_epochs: 30,
            patience: 3,
            adam: AdamConfig::default(),
            seed: 42,
            model: "model",
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Epochs actually run.
    pub epochs: usize,
    /// Training loss per epoch.
    pub train_losses: Vec<f64>,
    /// Validation loss per epoch.
    pub val_losses: Vec<f64>,
    /// Best validation loss (the restored checkpoint).
    pub best_val: f64,
}

/// Snapshot of parameter values (for best-checkpoint restore).
fn snapshot(store: &ParamStore) -> Vec<Tensor> {
    store.ids().map(|id| store.value(id).clone()).collect()
}

fn restore(store: &mut ParamStore, snap: &[Tensor]) {
    for (id, t) in store.ids().collect::<Vec<_>>().into_iter().zip(snap) {
        *store.value_mut(id) = t.clone();
    }
}

/// Trains a model whose loss is produced by `loss_fn`.
///
/// `loss_fn(graph, store, batch_index, training, rng)` must build the
/// forward pass for the given training batch and return a scalar loss node;
/// with `training = false` it is called on validation batches (indices
/// `0..n_val_batches`) and must not apply dropout.
pub fn train<F>(
    store: &mut ParamStore,
    config: TrainConfig,
    n_train_batches: usize,
    n_val_batches: usize,
    mut loss_fn: F,
) -> TrainReport
where
    F: FnMut(&mut Graph, &ParamStore, usize, bool, &mut StdRng) -> NodeId,
{
    assert!(n_train_batches > 0, "no training batches");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut adam = Adam::new(store, config.adam);
    let mut best_val = f64::INFINITY;
    let mut best_snap = snapshot(store);
    let mut bad_epochs = 0usize;
    let mut train_losses = Vec::new();
    let mut val_losses = Vec::new();

    let model_label = [("model", config.model)];
    let mut order: Vec<usize> = (0..n_train_batches).collect();
    for _epoch in 0..config.max_epochs {
        let epoch_start = std::time::Instant::now();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for &b in &order {
            store.zero_grads();
            let mut g = Graph::new();
            let loss = loss_fn(&mut g, store, b, true, &mut rng);
            epoch_loss += g.value(loss).get(0, 0);
            g.backward(loss, store);
            adam.step(store);
        }
        train_losses.push(epoch_loss / n_train_batches as f64);

        let val = if n_val_batches > 0 {
            let mut v = 0.0;
            for b in 0..n_val_batches {
                let mut g = Graph::new();
                let loss = loss_fn(&mut g, store, b, false, &mut rng);
                v += g.value(loss).get(0, 0);
            }
            v / n_val_batches as f64
        } else {
            *train_losses.last().expect("pushed above")
        };
        val_losses.push(val);

        telemetry::counter_add("train_epochs_total", &model_label, 1);
        telemetry::observe(
            "train_epoch_seconds",
            &model_label,
            telemetry::secs(epoch_start.elapsed()),
        );
        telemetry::gauge_set("train_loss", &model_label, *train_losses.last().expect("pushed"));
        telemetry::gauge_set("val_loss", &model_label, val);

        if val < best_val - 1e-12 {
            best_val = val;
            best_snap = snapshot(store);
            bad_epochs = 0;
        } else {
            bad_epochs += 1;
            if bad_epochs > config.patience {
                break;
            }
        }
    }
    restore(store, &best_snap);
    TrainReport { epochs: train_losses.len(), train_losses, val_losses, best_val }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Dense};

    /// y = sin(x) regression with a 2-layer MLP.
    #[allow(clippy::type_complexity)]
    fn make_problem() -> (Vec<(Tensor, Tensor)>, Vec<(Tensor, Tensor)>) {
        let batch = |lo: f64, hi: f64, n: usize| {
            let xs: Vec<f64> = (0..n).map(|i| lo + (hi - lo) * i as f64 / n as f64).collect();
            let ys: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
            (Tensor::col(&xs), Tensor::col(&ys))
        };
        let train: Vec<_> =
            (0..8).map(|b| batch(-3.0 + b as f64 * 0.7, -2.4 + b as f64 * 0.7, 16)).collect();
        let val = vec![batch(-1.0, 1.0, 32)];
        (train, val)
    }

    #[test]
    fn training_reduces_loss_and_early_stops() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let l1 = Dense::new(&mut store, "l1", 1, 16, Activation::Tanh, &mut rng);
        let l2 = Dense::new(&mut store, "l2", 16, 1, Activation::Identity, &mut rng);
        let (train_b, val_b) = make_problem();
        let report = train(
            &mut store,
            TrainConfig {
                max_epochs: 200,
                patience: 5,
                adam: AdamConfig { lr: 0.01, weight_decay: 0.0, ..Default::default() },
                seed: 1,
                ..Default::default()
            },
            train_b.len(),
            val_b.len(),
            |g, s, b, training, _rng| {
                let (x, y) = if training { &train_b[b] } else { &val_b[b] };
                let xi = g.input(x.clone());
                let h = l1.forward(g, s, xi);
                let out = l2.forward(g, s, h);
                g.mse(out, y)
            },
        );
        assert!(report.best_val < 0.02, "val loss {}", report.best_val);
        assert!(
            report.train_losses.first().expect("ran") > report.train_losses.last().expect("ran"),
            "loss did not decrease"
        );
    }

    #[test]
    fn early_stopping_restores_best_checkpoint() {
        // A "model" whose loss we control: improves for 3 epochs then
        // diverges. Early stopping must restore the epoch-3 parameters.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::row(&[0.0]));
        let epoch = std::cell::Cell::new(0usize);
        let report = train(
            &mut store,
            TrainConfig {
                max_epochs: 20,
                patience: 2,
                adam: AdamConfig {
                    lr: 0.5,
                    weight_decay: 0.0,
                    clip_norm: None,
                    ..Default::default()
                },
                seed: 0,
                ..Default::default()
            },
            1,
            1,
            |g, s, _b, training, _rng| {
                if training {
                    epoch.set(epoch.get() + 1);
                }
                // Target walks away after epoch 3, so val loss worsens.
                let target = if epoch.get() <= 3 { 1.0 } else { 100.0 };
                let wi = g.param(s, w);
                g.mse(wi, &Tensor::row(&[target]))
            },
        );
        assert!(report.epochs < 20, "should stop early, ran {}", report.epochs);
        // Restored weight is from the best epoch: near the early target 1.0,
        // far from 100.
        assert!(store.value(w).get(0, 0) < 5.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(9);
            let mut store = ParamStore::new();
            let l = Dense::new(&mut store, "l", 1, 4, Activation::Tanh, &mut rng);
            let l2 = Dense::new(&mut store, "l2", 4, 1, Activation::Identity, &mut rng);
            let x = Tensor::col(&[0.1, 0.2, 0.3]);
            let y = Tensor::col(&[0.5, 0.4, 0.3]);
            train(
                &mut store,
                TrainConfig { max_epochs: 5, seed, ..Default::default() },
                2,
                0,
                |g, s, _b, _t, _r| {
                    let xi = g.input(x.clone());
                    let h = l.forward(g, s, xi);
                    let out = l2.forward(g, s, h);
                    g.mse(out, &y)
                },
            )
            .train_losses
        };
        assert_eq!(run(5), run(5));
    }
}
