//! Reverse-mode automatic differentiation on a flat tape.
//!
//! A [`Graph`] is built per forward pass: every operation appends a node
//! holding its computed value and the op descriptor. [`Graph::backward`]
//! walks the tape in reverse, propagating adjoints, and accumulates
//! parameter gradients into the shared [`ParamStore`]. This
//! define-by-run design matches how the forecasting models (GRU, NBeats,
//! Transformer, Informer, DLinear) construct different graphs per batch.

use crate::tensor::Tensor;

/// Identifier of a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// Identifier of a node in a [`Graph`] tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

/// Holds model parameters and their accumulated gradients.
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its id.
    pub fn add(&mut self, name: &str, value: Tensor) -> ParamId {
        let (r, c) = value.shape();
        self.values.push(value);
        self.grads.push(Tensor::zeros(r, c));
        self.names.push(name.to_string());
        ParamId(self.values.len() - 1)
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable parameter value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// All parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Zeroes all gradients (call before each backward pass).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.data_mut().fill(0.0);
        }
    }

    /// Global L2 norm of all gradients (for clipping).
    pub fn grad_norm(&self) -> f64 {
        self.grads.iter().map(|g| g.data().iter().map(|v| v * v).sum::<f64>()).sum::<f64>().sqrt()
    }

    /// Scales all gradients (for clipping).
    pub fn scale_grads(&mut self, k: f64) {
        for g in &mut self.grads {
            g.scale_assign(k);
        }
    }

    /// Snapshots every parameter as a named tensor, in registration order.
    pub fn export_state(&self) -> crate::state::StateDict {
        let mut dict = crate::state::StateDict::new();
        for (name, value) in self.names.iter().zip(&self.values) {
            dict.insert(name, value.clone());
        }
        dict
    }

    /// Restores every parameter value from a snapshot.
    ///
    /// Strict both ways: each registered parameter must be present with a
    /// matching shape, and the snapshot may not hold extra entries. A
    /// failed import leaves the store untouched.
    pub fn import_state(
        &mut self,
        dict: &crate::state::StateDict,
    ) -> Result<(), crate::state::StateError> {
        for (name, value) in self.names.iter().zip(&self.values) {
            let (r, c) = value.shape();
            dict.require(name, r, c)?;
        }
        if dict.len() != self.values.len() {
            let known: std::collections::HashSet<&str> =
                self.names.iter().map(String::as_str).collect();
            let extra = dict
                .entries()
                .map(|(n, _)| n)
                .find(|n| !known.contains(n))
                .unwrap_or("<duplicate registration>");
            return Err(crate::state::StateError::Unexpected(extra.to_string()));
        }
        for (name, value) in self.names.iter().zip(&mut self.values) {
            *value = dict.get(name).expect("validated above").clone();
        }
        Ok(())
    }

    fn accumulate(&mut self, id: ParamId, grad: &Tensor) {
        self.grads[id.0].add_assign(grad);
    }
}

#[derive(Debug, Clone)]
enum Op {
    Input,
    Param(ParamId),
    MatMul(NodeId, NodeId),
    Add(NodeId, NodeId),
    /// `a [n,c] + bias [1,c]` broadcast over rows.
    AddRow(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Scale(NodeId, f64),
    /// The constant is applied at construction; backward only routes the
    /// gradient, so the field is write-only after the forward pass.
    AddConst(NodeId, #[allow(dead_code)] f64),
    Tanh(NodeId),
    Sigmoid(NodeId),
    Relu(NodeId),
    /// Row-wise softmax; the node value caches the output.
    SoftmaxRows(NodeId),
    Transpose(NodeId),
    HStack(NodeId, NodeId),
    VStack(NodeId, NodeId),
    SliceCols(NodeId, usize, usize),
    SliceRows(NodeId, usize, usize),
    /// Mean of all elements, a `1×1` scalar.
    MeanAll(NodeId),
    /// Mean squared error against a constant target, a `1×1` scalar.
    Mse(NodeId, Tensor),
    /// Inverted dropout with a precomputed 0/`1/keep` mask.
    Dropout(NodeId, Tensor),
    /// Per-sample block products `C_i = A_i · B_iᵀ` over `n` stacked
    /// row-blocks (batched attention scores). Each block runs the same
    /// kernel as `matmul(a_i, transpose(b_i))`, so values are bitwise
    /// identical to the per-sample graph ops this replaces.
    BatchMatMulNT(NodeId, NodeId, usize),
    /// Per-sample block products `C_i = A_i · B_i` over `n` stacked
    /// row-blocks (batched attention·value).
    BatchMatMul(NodeId, NodeId, usize),
    /// Row-wise layer normalization with `gamma`/`beta` `[1,c]` params;
    /// caches `(x_hat, inv_std)` for the backward pass.
    LayerNorm {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        x_hat: Tensor,
        inv_std: Vec<f64>,
    },
}

#[derive(Debug, Clone)]
struct Node {
    value: Tensor,
    op: Op,
}

/// A define-by-run computation tape.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        self.nodes.push(Node { value, op });
        NodeId(self.nodes.len() - 1)
    }

    /// The computed value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a constant input.
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Input)
    }

    /// Adds a parameter leaf (value copied from the store).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Elementwise sum (same shape).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(v, Op::Add(a, b))
    }

    /// Adds a `[1,c]` bias row to every row of `a`.
    pub fn add_row(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let (n, c) = self.value(a).shape();
        assert_eq!(self.value(bias).shape(), (1, c), "bias must be 1x{c}");
        let mut v = self.value(a).clone();
        let brow = self.value(bias).data().to_vec();
        for r in 0..n {
            crate::kernels::axpy(1.0, &brow, &mut v.data_mut()[r * c..(r + 1) * c]);
        }
        self.push(v, Op::AddRow(a, bias))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(v, Op::Mul(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: NodeId, k: f64) -> NodeId {
        let v = self.value(a).map(|x| x * k);
        self.push(v, Op::Scale(a, k))
    }

    /// Adds a scalar constant.
    pub fn add_const(&mut self, a: NodeId, k: f64) -> NodeId {
        let v = self.value(a).map(|x| x + k);
        self.push(v, Op::AddConst(a, k))
    }

    /// `1 - a`, the gate complement used by GRU.
    pub fn one_minus(&mut self, a: NodeId) -> NodeId {
        let neg = self.scale(a, -1.0);
        self.add_const(neg, 1.0)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f64::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Row-wise softmax (numerically stabilized).
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let x = self.value(a);
        let (n, c) = x.shape();
        let mut v = Tensor::zeros(n, c);
        for r in 0..n {
            let row = &x.data()[r * c..(r + 1) * c];
            let out = &mut v.data_mut()[r * c..(r + 1) * c];
            let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut s = 0.0;
            for (o, &xj) in out.iter_mut().zip(row) {
                *o = (xj - m).exp();
                s += *o;
            }
            let inv = 1.0 / s;
            for o in out.iter_mut() {
                *o *= inv;
            }
        }
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Column concatenation.
    pub fn hstack(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).hstack(self.value(b));
        self.push(v, Op::HStack(a, b))
    }

    /// Row concatenation.
    pub fn vstack(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).vstack(self.value(b));
        self.push(v, Op::VStack(a, b))
    }

    /// Row concatenation of many nodes, reduced as a balanced tree.
    ///
    /// Concatenation is associative, so the result is elementwise identical
    /// to a left-to-right [`Graph::vstack`] fold — but the tree keeps the
    /// copied bytes at `O(total · log n)` instead of `O(total · n)`, which
    /// matters when batched inference stacks per-sample attention outputs.
    ///
    /// # Panics
    /// Panics on an empty node list.
    pub fn vstack_all(&mut self, nodes: &[NodeId]) -> NodeId {
        assert!(!nodes.is_empty(), "vstack_all of no nodes");
        let mut level = nodes.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(if pair.len() == 2 { self.vstack(pair[0], pair[1]) } else { pair[0] });
            }
            level = next;
        }
        level[0]
    }

    /// Per-sample block products `C_i = A_i · B_iᵀ` for batched attention
    /// scores: `a` stacks `n` row-blocks `[la, k]`, `b` stacks `n`
    /// row-blocks `[lb, k]`, and the result stacks the `n` `[la, lb]`
    /// blocks. One node replaces `3n` slice/transpose/matmul nodes, and
    /// each block is bitwise identical to `matmul(a_i, transpose(b_i))`
    /// because [`crate::kernels::matmul_nt`] materializes the transpose
    /// and reuses the same blocked kernel.
    ///
    /// # Panics
    /// Panics when the row counts are not divisible by `n` or the inner
    /// dimensions disagree.
    pub fn batch_matmul_nt(&mut self, a: NodeId, b: NodeId, n: usize) -> NodeId {
        let (ar, k) = self.value(a).shape();
        let (br, bk) = self.value(b).shape();
        assert!(n > 0, "batched matmul needs at least one sample");
        assert_eq!(k, bk, "batch_matmul_nt inner dims {k} vs {bk}");
        assert!(
            ar.is_multiple_of(n) && br.is_multiple_of(n),
            "stacked rows ({ar}, {br}) not divisible by {n} samples"
        );
        let (la, lb) = (ar / n, br / n);
        let mut v = Tensor::zeros(ar, lb);
        for i in 0..n {
            crate::kernels::matmul_nt(
                &self.value(a).data()[i * la * k..(i + 1) * la * k],
                &self.value(b).data()[i * lb * k..(i + 1) * lb * k],
                &mut v.data_mut()[i * la * lb..(i + 1) * la * lb],
                la,
                k,
                lb,
            );
        }
        self.push(v, Op::BatchMatMulNT(a, b, n))
    }

    /// Per-sample block products `C_i = A_i · B_i`: `a` stacks `n`
    /// row-blocks `[la, k]`, `b` stacks `n` row-blocks `[k, c]`, and the
    /// result stacks the `n` `[la, c]` blocks (batched attention·value).
    /// Each block is bitwise identical to `matmul(a_i, b_i)`.
    ///
    /// # Panics
    /// Panics when the row counts are not divisible by `n` or the inner
    /// dimensions disagree.
    pub fn batch_matmul(&mut self, a: NodeId, b: NodeId, n: usize) -> NodeId {
        let (ar, k) = self.value(a).shape();
        let (br, c) = self.value(b).shape();
        assert!(n > 0, "batched matmul needs at least one sample");
        assert!(
            ar.is_multiple_of(n) && br.is_multiple_of(n),
            "stacked rows ({ar}, {br}) not divisible by {n} samples"
        );
        assert_eq!(k, br / n, "batch_matmul inner dims {k} vs {}", br / n);
        let la = ar / n;
        let mut v = Tensor::zeros(ar, c);
        for i in 0..n {
            crate::kernels::matmul(
                &self.value(a).data()[i * la * k..(i + 1) * la * k],
                &self.value(b).data()[i * k * c..(i + 1) * k * c],
                &mut v.data_mut()[i * la * c..(i + 1) * la * c],
                la,
                k,
                c,
            );
        }
        self.push(v, Op::BatchMatMul(a, b, n))
    }

    /// Column slice `start..end`.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let v = self.value(a).slice_cols(start, end);
        self.push(v, Op::SliceCols(a, start, end))
    }

    /// Row slice `start..end`.
    pub fn slice_rows(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let v = self.value(a).slice_rows(start, end);
        self.push(v, Op::SliceRows(a, start, end))
    }

    /// Mean of all elements (`1×1`).
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let x = self.value(a);
        let v = Tensor::new(1, 1, vec![x.sum() / x.len() as f64]);
        self.push(v, Op::MeanAll(a))
    }

    /// Mean squared error against a constant target (`1×1`).
    pub fn mse(&mut self, pred: NodeId, target: &Tensor) -> NodeId {
        let p = self.value(pred);
        assert_eq!(p.shape(), target.shape(), "mse shape mismatch");
        let sse: f64 = p.data().iter().zip(target.data()).map(|(a, b)| (a - b) * (a - b)).sum();
        let v = Tensor::new(1, 1, vec![sse / p.len() as f64]);
        self.push(v, Op::Mse(pred, target.clone()))
    }

    /// Inverted dropout with a caller-supplied Bernoulli mask already scaled
    /// by `1/keep_prob` (pass all-ones at inference).
    pub fn dropout(&mut self, a: NodeId, mask: Tensor) -> NodeId {
        assert_eq!(self.value(a).shape(), mask.shape(), "dropout mask shape");
        let v = self.value(a).zip(&mask, |x, m| x * m);
        self.push(v, Op::Dropout(a, mask))
    }

    /// Row-wise layer normalization: `(x - mean) / std * gamma + beta`,
    /// with `gamma`/`beta` `[1,c]` parameter nodes.
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId) -> NodeId {
        const EPS: f64 = 1e-5;
        let xv = self.value(x);
        let (n, c) = xv.shape();
        assert_eq!(self.value(gamma).shape(), (1, c), "gamma shape");
        assert_eq!(self.value(beta).shape(), (1, c), "beta shape");
        let mut x_hat = Tensor::zeros(n, c);
        let mut inv_std = Vec::with_capacity(n);
        let mut out = Tensor::zeros(n, c);
        let grow = self.value(gamma).data().to_vec();
        let brow = self.value(beta).data().to_vec();
        for r in 0..n {
            let xrow = &xv.data()[r * c..(r + 1) * c];
            let mean: f64 = xrow.iter().sum::<f64>() / c as f64;
            let var: f64 = xrow.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / c as f64;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std.push(istd);
            let hrow = &mut x_hat.data_mut()[r * c..(r + 1) * c];
            let orow = &mut out.data_mut()[r * c..(r + 1) * c];
            for j in 0..c {
                let xh = (xrow[j] - mean) * istd;
                hrow[j] = xh;
                orow[j] = xh * grow[j] + brow[j];
            }
        }
        self.push(out, Op::LayerNorm { x, gamma, beta, x_hat, inv_std })
    }

    /// Runs reverse-mode differentiation from `root` (which must be `1×1`),
    /// accumulating parameter gradients into `store`.
    ///
    /// # Panics
    /// Panics if `root` is not a scalar node.
    pub fn backward(&self, root: NodeId, store: &mut ParamStore) {
        assert_eq!(self.value(root).shape(), (1, 1), "backward root must be scalar");
        let mut adjoints: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        adjoints[root.0] = Some(Tensor::new(1, 1, vec![1.0]));

        for i in (0..self.nodes.len()).rev() {
            let Some(grad) = adjoints[i].take() else { continue };
            let accum =
                |adjoints: &mut Vec<Option<Tensor>>, id: NodeId, g: Tensor| match &mut adjoints
                    [id.0]
                {
                    Some(existing) => existing.add_assign(&g),
                    slot @ None => *slot = Some(g),
                };
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(pid) => store.accumulate(*pid, &grad),
                Op::MatMul(a, b) => {
                    // grad·Bᵀ and Aᵀ·grad via the layout-aware kernels:
                    // neither transpose is materialized.
                    let ga = grad.matmul_nt(self.value(*b));
                    let gb = self.value(*a).matmul_tn(&grad);
                    accum(&mut adjoints, *a, ga);
                    accum(&mut adjoints, *b, gb);
                }
                Op::Add(a, b) => {
                    accum(&mut adjoints, *a, grad.clone());
                    accum(&mut adjoints, *b, grad);
                }
                Op::AddRow(a, bias) => {
                    let (n, c) = grad.shape();
                    let mut gb = Tensor::zeros(1, c);
                    for r in 0..n {
                        let grow = &grad.data()[r * c..(r + 1) * c];
                        crate::kernels::axpy(1.0, grow, gb.data_mut());
                    }
                    accum(&mut adjoints, *a, grad);
                    accum(&mut adjoints, *bias, gb);
                }
                Op::Sub(a, b) => {
                    accum(&mut adjoints, *a, grad.clone());
                    accum(&mut adjoints, *b, grad.map(|g| -g));
                }
                Op::Mul(a, b) => {
                    let ga = grad.zip(self.value(*b), |g, y| g * y);
                    let gb = grad.zip(self.value(*a), |g, x| g * x);
                    accum(&mut adjoints, *a, ga);
                    accum(&mut adjoints, *b, gb);
                }
                Op::Scale(a, k) => accum(&mut adjoints, *a, grad.map(|g| g * k)),
                Op::AddConst(a, _) => accum(&mut adjoints, *a, grad),
                Op::Tanh(a) => {
                    let g = grad.zip(&self.nodes[i].value, |g, y| g * (1.0 - y * y));
                    accum(&mut adjoints, *a, g);
                }
                Op::Sigmoid(a) => {
                    let g = grad.zip(&self.nodes[i].value, |g, y| g * y * (1.0 - y));
                    accum(&mut adjoints, *a, g);
                }
                Op::Relu(a) => {
                    let g = grad.zip(self.value(*a), |g, x| if x > 0.0 { g } else { 0.0 });
                    accum(&mut adjoints, *a, g);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[i].value;
                    let (n, c) = y.shape();
                    let mut g = Tensor::zeros(n, c);
                    for r in 0..n {
                        let yrow = &y.data()[r * c..(r + 1) * c];
                        let grow = &grad.data()[r * c..(r + 1) * c];
                        let dot = crate::kernels::dot(grow, yrow);
                        let orow = &mut g.data_mut()[r * c..(r + 1) * c];
                        for j in 0..c {
                            orow[j] = yrow[j] * (grow[j] - dot);
                        }
                    }
                    accum(&mut adjoints, *a, g);
                }
                Op::BatchMatMulNT(a, b, n) => {
                    // Per block: gA_i = G_i·B_i, gB_i = G_iᵀ·A_i.
                    let (ar, k) = self.value(*a).shape();
                    let br = self.value(*b).rows();
                    let (la, lb) = (ar / n, br / n);
                    let mut ga = Tensor::zeros(ar, k);
                    let mut gb = Tensor::zeros(br, k);
                    for i in 0..*n {
                        let gblk = &grad.data()[i * la * lb..(i + 1) * la * lb];
                        let ablk = &self.value(*a).data()[i * la * k..(i + 1) * la * k];
                        let bblk = &self.value(*b).data()[i * lb * k..(i + 1) * lb * k];
                        crate::kernels::matmul(
                            gblk,
                            bblk,
                            &mut ga.data_mut()[i * la * k..(i + 1) * la * k],
                            la,
                            lb,
                            k,
                        );
                        crate::kernels::matmul_tn(
                            gblk,
                            ablk,
                            &mut gb.data_mut()[i * lb * k..(i + 1) * lb * k],
                            lb,
                            la,
                            k,
                        );
                    }
                    accum(&mut adjoints, *a, ga);
                    accum(&mut adjoints, *b, gb);
                }
                Op::BatchMatMul(a, b, n) => {
                    // Per block: gA_i = G_i·B_iᵀ, gB_i = A_iᵀ·G_i.
                    let (ar, k) = self.value(*a).shape();
                    let (br, c) = self.value(*b).shape();
                    let la = ar / n;
                    let mut ga = Tensor::zeros(ar, k);
                    let mut gb = Tensor::zeros(br, c);
                    for i in 0..*n {
                        let gblk = &grad.data()[i * la * c..(i + 1) * la * c];
                        let ablk = &self.value(*a).data()[i * la * k..(i + 1) * la * k];
                        let bblk = &self.value(*b).data()[i * k * c..(i + 1) * k * c];
                        crate::kernels::matmul_nt(
                            gblk,
                            bblk,
                            &mut ga.data_mut()[i * la * k..(i + 1) * la * k],
                            la,
                            c,
                            k,
                        );
                        crate::kernels::matmul_tn(
                            ablk,
                            gblk,
                            &mut gb.data_mut()[i * k * c..(i + 1) * k * c],
                            k,
                            la,
                            c,
                        );
                    }
                    accum(&mut adjoints, *a, ga);
                    accum(&mut adjoints, *b, gb);
                }
                Op::Transpose(a) => accum(&mut adjoints, *a, grad.transpose()),
                Op::HStack(a, b) => {
                    let ca = self.value(*a).cols();
                    accum(&mut adjoints, *a, grad.slice_cols(0, ca));
                    accum(&mut adjoints, *b, grad.slice_cols(ca, grad.cols()));
                }
                Op::VStack(a, b) => {
                    let ra = self.value(*a).rows();
                    accum(&mut adjoints, *a, grad.slice_rows(0, ra));
                    accum(&mut adjoints, *b, grad.slice_rows(ra, grad.rows()));
                }
                Op::SliceCols(a, start, end) => {
                    let (n, c) = self.value(*a).shape();
                    let w = end - start;
                    let mut g = Tensor::zeros(n, c);
                    for r in 0..n {
                        let grow = &grad.data()[r * w..(r + 1) * w];
                        g.data_mut()[r * c + start..r * c + end].copy_from_slice(grow);
                    }
                    accum(&mut adjoints, *a, g);
                }
                Op::SliceRows(a, start, end) => {
                    let (n, c) = self.value(*a).shape();
                    let mut g = Tensor::zeros(n, c);
                    g.data_mut()[start * c..end * c].copy_from_slice(grad.data());
                    accum(&mut adjoints, *a, g);
                }
                Op::MeanAll(a) => {
                    let x = self.value(*a);
                    let k = grad.get(0, 0) / x.len() as f64;
                    accum(&mut adjoints, *a, x.map(|_| k));
                }
                Op::Mse(a, target) => {
                    let p = self.value(*a);
                    let k = 2.0 * grad.get(0, 0) / p.len() as f64;
                    let g = p.zip(target, |x, t| k * (x - t));
                    accum(&mut adjoints, *a, g);
                }
                Op::Dropout(a, mask) => {
                    accum(&mut adjoints, *a, grad.zip(mask, |g, m| g * m));
                }
                Op::LayerNorm { x, gamma, beta, x_hat, inv_std } => {
                    let (n, c) = grad.shape();
                    let gv = self.value(*gamma).data();
                    let mut g_gamma = Tensor::zeros(1, c);
                    let mut g_beta = Tensor::zeros(1, c);
                    let mut g_x = Tensor::zeros(n, c);
                    let mut dxhat = vec![0.0; c];
                    for (r, &istd) in inv_std.iter().enumerate().take(n) {
                        let grow = &grad.data()[r * c..(r + 1) * c];
                        let hrow = &x_hat.data()[r * c..(r + 1) * c];
                        // dL/dx_hat = grad * gamma
                        for j in 0..c {
                            dxhat[j] = grow[j] * gv[j];
                        }
                        let mean_dxhat: f64 = dxhat.iter().sum::<f64>() / c as f64;
                        let mean_dxhat_xhat = crate::kernels::dot(&dxhat, hrow) / c as f64;
                        let ggrow = g_gamma.data_mut();
                        for j in 0..c {
                            ggrow[j] += grow[j] * hrow[j];
                        }
                        crate::kernels::axpy(1.0, grow, g_beta.data_mut());
                        let gxrow = &mut g_x.data_mut()[r * c..(r + 1) * c];
                        for j in 0..c {
                            gxrow[j] = istd * (dxhat[j] - mean_dxhat - hrow[j] * mean_dxhat_xhat);
                        }
                    }
                    accum(&mut adjoints, *x, g_x);
                    accum(&mut adjoints, *gamma, g_gamma);
                    accum(&mut adjoints, *beta, g_beta);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check: perturb each parameter scalar and
    /// compare the numerical gradient of `f` with the autodiff gradient.
    fn grad_check<F>(store: &mut ParamStore, build: F, tol: f64)
    where
        F: Fn(&mut Graph, &ParamStore) -> NodeId,
    {
        // Autodiff gradients.
        store.zero_grads();
        let mut g = Graph::new();
        let loss = build(&mut g, store);
        g.backward(loss, store);
        let auto: Vec<Tensor> = store.ids().map(|id| store.grad(id).clone()).collect();

        // Numerical gradients.
        let h = 1e-6;
        for id in store.ids().collect::<Vec<_>>() {
            for k in 0..store.value(id).len() {
                let orig = store.value(id).data()[k];
                store.value_mut(id).data_mut()[k] = orig + h;
                let mut g1 = Graph::new();
                let l1 = build(&mut g1, store);
                let f1 = g1.value(l1).get(0, 0);
                store.value_mut(id).data_mut()[k] = orig - h;
                let mut g2 = Graph::new();
                let l2 = build(&mut g2, store);
                let f2 = g2.value(l2).get(0, 0);
                store.value_mut(id).data_mut()[k] = orig;
                let num = (f1 - f2) / (2.0 * h);
                let aut = auto[id.0].data()[k];
                assert!(
                    (num - aut).abs() < tol * (1.0 + num.abs().max(aut.abs())),
                    "param {} elem {k}: numerical {num} vs autodiff {aut}",
                    store.name(id),
                );
            }
        }
    }

    fn seeded(vals: &[f64], rows: usize, cols: usize) -> Tensor {
        Tensor::new(rows, cols, vals.to_vec())
    }

    #[test]
    fn grad_dense_tanh_mse() {
        let mut store = ParamStore::new();
        let w = store.add("w", seeded(&[0.3, -0.2, 0.5, 0.1, 0.4, -0.6], 2, 3));
        let b = store.add("b", seeded(&[0.05, -0.05, 0.2], 1, 3));
        let x = seeded(&[1.0, 2.0, -1.0, 0.5], 2, 2);
        let t = seeded(&[0.1, 0.2, 0.3, -0.1, 0.0, 0.4], 2, 3);
        grad_check(
            &mut store,
            move |g, s| {
                let xi = g.input(x.clone());
                let wi = g.param(s, w);
                let bi = g.param(s, b);
                let y = g.matmul(xi, wi);
                let y = g.add_row(y, bi);
                let y = g.tanh(y);
                g.mse(y, &t)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_sigmoid_relu_mix() {
        let mut store = ParamStore::new();
        let w1 = store.add("w1", seeded(&[0.2, -0.4, 0.7, 0.3], 2, 2));
        let w2 = store.add("w2", seeded(&[0.5, -0.1, -0.3, 0.8], 2, 2));
        let x = seeded(&[0.6, -1.2, 0.9, 0.1], 2, 2);
        let t = seeded(&[0.2, 0.4, -0.3, 0.1], 2, 2);
        grad_check(
            &mut store,
            move |g, s| {
                let xi = g.input(x.clone());
                let w1i = g.param(s, w1);
                let w2i = g.param(s, w2);
                let h = g.matmul(xi, w1i);
                let h = g.sigmoid(h);
                let h2 = g.matmul(h, w2i);
                let h2 = g.relu(h2);
                g.mse(h2, &t)
            },
            1e-4, // relu kinks reduce FD accuracy
        );
    }

    #[test]
    fn grad_softmax_attention_shape() {
        // A tiny attention-like computation: softmax(QK^T)V.
        let mut store = ParamStore::new();
        let q = store.add("q", seeded(&[0.1, 0.5, -0.3, 0.2, 0.4, -0.1], 3, 2));
        let k = store.add("k", seeded(&[0.3, -0.2, 0.6, 0.1, -0.4, 0.5], 3, 2));
        let v = store.add("v", seeded(&[1.0, 0.0, 0.5, -0.5, 0.2, 0.8], 3, 2));
        let t = seeded(&[0.1; 6], 3, 2);
        grad_check(
            &mut store,
            move |g, s| {
                let qi = g.param(s, q);
                let ki = g.param(s, k);
                let vi = g.param(s, v);
                let kt = g.transpose(ki);
                let scores = g.matmul(qi, kt);
                let scores = g.scale(scores, 1.0 / (2.0f64).sqrt());
                let attn = g.softmax_rows(scores);
                let out = g.matmul(attn, vi);
                g.mse(out, &t)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_layernorm() {
        let mut store = ParamStore::new();
        let x = store.add("x", seeded(&[1.0, 2.0, 4.0, -1.0, 0.5, 3.0], 2, 3));
        let gamma = store.add("gamma", seeded(&[1.2, 0.8, 1.0], 1, 3));
        let beta = store.add("beta", seeded(&[0.1, -0.1, 0.0], 1, 3));
        let t = seeded(&[0.5, -0.5, 0.2, 0.1, 0.3, -0.2], 2, 3);
        grad_check(
            &mut store,
            move |g, s| {
                let xi = g.param(s, x);
                let gi = g.param(s, gamma);
                let bi = g.param(s, beta);
                let y = g.layer_norm(xi, gi, bi);
                g.mse(y, &t)
            },
            1e-4,
        );
    }

    #[test]
    fn grad_gru_like_gates() {
        // z = sigmoid(x W_z), h_cand = tanh(x W_h), h = (1-z)*h0 + z*h_cand
        let mut store = ParamStore::new();
        let wz = store.add("wz", seeded(&[0.4, -0.2, 0.1, 0.6], 2, 2));
        let wh = store.add("wh", seeded(&[-0.3, 0.5, 0.2, -0.1], 2, 2));
        let x = seeded(&[0.7, -0.4, 1.1, 0.2], 2, 2);
        let h0 = seeded(&[0.1, 0.3, -0.2, 0.5], 2, 2);
        let t = seeded(&[0.0, 0.1, 0.2, 0.3], 2, 2);
        grad_check(
            &mut store,
            move |g, s| {
                let xi = g.input(x.clone());
                let h0i = g.input(h0.clone());
                let wzi = g.param(s, wz);
                let whi = g.param(s, wh);
                let zl = g.matmul(xi, wzi);
                let z = g.sigmoid(zl);
                let hl = g.matmul(xi, whi);
                let hc = g.tanh(hl);
                let omz = g.one_minus(z);
                let a = g.mul(omz, h0i);
                let b = g.mul(z, hc);
                let h = g.add(a, b);
                g.mse(h, &t)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_stacks_and_slices() {
        let mut store = ParamStore::new();
        let w = store.add("w", seeded(&[0.3, -0.7, 0.2, 0.9], 2, 2));
        let x = seeded(&[1.0, -0.5], 1, 2);
        let t = seeded(&[0.2, 0.1, 0.4], 1, 3);
        grad_check(
            &mut store,
            move |g, s| {
                let xi = g.input(x.clone());
                let wi = g.param(s, w);
                let y = g.matmul(xi, wi); // 1x2
                let left = g.slice_cols(y, 0, 1);
                let h = g.hstack(y, left); // 1x3
                g.mse(h, &t)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_mean_and_scale() {
        let mut store = ParamStore::new();
        let w = store.add("w", seeded(&[2.0, -3.0, 1.0, 4.0], 2, 2));
        grad_check(
            &mut store,
            move |g, s| {
                let wi = g.param(s, w);
                let sq = g.mul(wi, wi);
                let sc = g.scale(sq, 0.5);
                let sh = g.add_const(sc, 1.0);
                g.mean_all(sh)
            },
            1e-6,
        );
    }

    #[test]
    fn grad_vstack_slice_rows() {
        let mut store = ParamStore::new();
        let a = store.add("a", seeded(&[1.0, 2.0], 1, 2));
        let b = store.add("b", seeded(&[3.0, 4.0], 1, 2));
        let t = seeded(&[0.0, 0.0], 1, 2);
        grad_check(
            &mut store,
            move |g, s| {
                let ai = g.param(s, a);
                let bi = g.param(s, b);
                let st = g.vstack(ai, bi); // 2x2
                let second = g.slice_rows(st, 1, 2);
                let sum = g.add(second, ai);
                g.mse(sum, &t)
            },
            1e-6,
        );
    }

    #[test]
    fn dropout_mask_applies_and_routes_grads() {
        let mut store = ParamStore::new();
        let w = store.add("w", seeded(&[1.0, 2.0, 3.0, 4.0], 1, 4));
        let mask = seeded(&[2.0, 0.0, 2.0, 0.0], 1, 4); // keep=0.5 inverted
        store.zero_grads();
        let mut g = Graph::new();
        let wi = g.param(&store, w);
        let d = g.dropout(wi, mask);
        assert_eq!(g.value(d).data(), &[2.0, 0.0, 6.0, 0.0]);
        let t = Tensor::zeros(1, 4);
        let loss = g.mse(d, &t);
        g.backward(loss, &mut store);
        // Gradient through dropped elements must be zero.
        let grads = store.grad(w).data();
        assert_eq!(grads[1], 0.0);
        assert_eq!(grads[3], 0.0);
        assert!(grads[0] != 0.0);
    }

    #[test]
    fn param_reused_twice_accumulates() {
        // loss = mean((w + w)^2) -> dL/dw = 8w/len, checks adjoint fan-in.
        let mut store = ParamStore::new();
        let w = store.add("w", seeded(&[1.0, -2.0], 1, 2));
        grad_check(
            &mut store,
            move |g, s| {
                let wi = g.param(s, w);
                let s2 = g.add(wi, wi);
                let sq = g.mul(s2, s2);
                g.mean_all(sq)
            },
            1e-6,
        );
    }

    #[test]
    fn grad_norm_and_clipping_helpers() {
        let mut store = ParamStore::new();
        let w = store.add("w", seeded(&[3.0, 4.0], 1, 2));
        store.zero_grads();
        let mut g = Graph::new();
        let wi = g.param(&store, w);
        let sq = g.mul(wi, wi);
        let loss = g.mean_all(sq);
        g.backward(loss, &mut store);
        // d/dw mean(w^2) = 2w/2 = w
        assert!((store.grad_norm() - 5.0).abs() < 1e-9);
        store.scale_grads(0.5);
        assert!((store.grad_norm() - 2.5).abs() < 1e-9);
        store.zero_grads();
        assert_eq!(store.grad_norm(), 0.0);
    }
}
