//! Property tests for the blocked matmul kernels: on random shapes and
//! data, every kernel variant must agree with a naive triple-loop
//! reference to floating-point accumulation tolerance.

use neural::kernels;
use neural::tensor::Tensor;
use proptest::prelude::*;

/// Deterministic pseudo-random fill so shapes and data derive from a
/// single proptest-provided seed.
fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            // xorshift64*, mapped into [-1, 1).
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let mantissa = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64;
            mantissa / (1u64 << 52) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Naive i-j-k reference matmul.
fn naive(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
    let mut out = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Accumulation-order changes bound the divergence by ~k·ulp per output;
/// scale the 1e-12 budget with the reduction length.
fn tol(k: usize) -> f64 {
    1e-12 * (k as f64).max(1.0)
}

fn assert_close(got: &[f64], want: &[f64], k: usize, label: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert!(
            (g - w).abs() <= tol(k),
            "{} diverges at {}: {} vs {} (tol {})",
            label,
            i,
            g,
            w,
            tol(k)
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_matches_naive(
        m in 1usize..24,
        k in 1usize..400,
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut out = vec![0.0; m * n];
        kernels::matmul(&a, &b, &mut out, m, k, n);
        assert_close(&out, &naive(&a, &b, m, k, n), k, "matmul")?;
    }

    #[test]
    fn tensor_matmul_into_matches_naive(
        m in 1usize..16,
        k in 1usize..200,
        n in 1usize..16,
        seed in any::<u64>(),
    ) {
        let a = Tensor::new(m, k, fill(m * k, seed));
        let b = Tensor::new(k, n, fill(k * n, seed ^ 0xABCD_EF01_2345_6789));
        let want = naive(a.data(), b.data(), m, k, n);
        // The allocating and the in-place paths must agree with the
        // reference (and with each other).
        assert_close(a.matmul(&b).data(), &want, k, "matmul")?;
        let mut out = Tensor::zeros(m, n);
        a.matmul_into(&b, &mut out);
        assert_close(out.data(), &want, k, "matmul_into")?;
    }

    #[test]
    fn layout_aware_variants_match_naive(
        m in 1usize..12,
        k in 1usize..120,
        n in 1usize..12,
        seed in any::<u64>(),
    ) {
        let a = Tensor::new(m, k, fill(m * k, seed));
        let b = Tensor::new(k, n, fill(k * n, seed ^ 0x1234_5678_9ABC_DEF0));
        let want = naive(a.data(), b.data(), m, k, n);
        // a · b via the transposed-operand kernels.
        let bt = b.transpose();
        assert_close(a.matmul_nt(&bt).data(), &want, k, "matmul_nt")?;
        let at = a.transpose();
        assert_close(at.matmul_tn(&b).data(), &want, k, "matmul_tn")?;
    }
}
