//! The TCP front end: accept loop, connection handlers, request routing.
//!
//! One detached handler thread per connection reads frames in a loop and
//! routes them:
//!
//! * `ingest` appends points into the server's [`TsStore`], creating the
//!   series with the requested chunk codec on first touch;
//! * `forecast` resolves the model through the warm registry, windows
//!   the last `input_len` points straight off store chunks (the
//!   [`SeriesSource`] read path — no intermediate materialised copy of
//!   the whole series), and submits to the batching scheduler;
//! * `compress` streams the stored series through one of the paper's
//!   error-bounded codecs;
//! * `stats` returns the server's own counters as key=value text and
//!   `metrics` returns the process-wide Prometheus dump.
//!
//! Shutdown is cooperative: a `shutdown` request (or
//! [`Server::stop`]) raises a flag and nudges the accept loop awake
//! with a loopback connection.
//!
//! [`SeriesSource`]: tsdata::series::SeriesSource

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use compression::Method;
use store::{ChunkCodec, SeriesId, StoreConfig, TsStore};
use telemetry::{counter_add, observe, secs};
use tsdata::series::SeriesSource;

use crate::registry::ModelRegistry;
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::wire::{
    self, Request, Response, OP_COMPRESS, OP_FORECAST, OP_INGEST, OP_METRICS, OP_SHUTDOWN, OP_STATS,
};
use crate::ServeError;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. Port 0 picks a free port; [`Server::local_addr`]
    /// reports the resolved one.
    pub addr: String,
    /// Batching / admission knobs.
    pub scheduler: SchedulerConfig,
    /// Store sizing for ingested series.
    pub store: StoreConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig::default(),
            store: StoreConfig::default(),
        }
    }
}

/// Per-request-type counters for the `stats` response (independent of
/// the telemetry registry, so they report even with telemetry disabled).
#[derive(Default)]
struct RequestStats {
    ingest: AtomicU64,
    forecast: AtomicU64,
    compress: AtomicU64,
    stats: AtomicU64,
    metrics: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
}

struct Inner {
    registry: Arc<ModelRegistry>,
    scheduler: Scheduler,
    store: TsStore,
    requests: RequestStats,
    shutdown: AtomicBool,
    listen_addr: SocketAddr,
}

/// A running server. Dropping it stops the accept loop.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop, and returns immediately.
    pub fn start(config: ServeConfig, registry: Arc<ModelRegistry>) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Transport(format!("bind {}: {e}", config.addr)))?;
        let addr = listener.local_addr().map_err(|e| ServeError::Transport(e.to_string()))?;
        let inner = Arc::new(Inner {
            registry,
            scheduler: Scheduler::start(config.scheduler),
            store: TsStore::new(config.store),
            requests: RequestStats::default(),
            shutdown: AtomicBool::new(false),
            listen_addr: addr,
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, accept_inner))
            .map_err(|e| ServeError::Transport(e.to_string()))?;
        Ok(Server { inner, addr, accept_thread: Some(accept_thread) })
    }

    /// The resolved bind address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server routes through.
    pub fn registry(&self) -> &ModelRegistry {
        &self.inner.registry
    }

    /// Blocks until a `shutdown` request stops the accept loop (the
    /// serve binary's main-thread parking spot).
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Signals shutdown and joins the accept loop. In-flight connections
    /// finish their current request and close on their next read.
    pub fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Nudge the blocking accept() awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_inner = Arc::clone(&inner);
        // Detached: the handler exits when the peer disconnects or sends
        // a malformed frame.
        let _ = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || handle_connection(stream, conn_inner));
    }
}

fn handle_connection(stream: TcpStream, inner: Arc<Inner>) {
    let mut reader = match stream.try_clone() {
        Ok(s) => std::io::BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let payload = match wire::read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean disconnect
            Err(_) => return,   // oversized/hostile frame: drop the connection
        };
        let (op, response) = match wire::decode_request(&payload) {
            Ok(req) => {
                let op = opcode_of(&req);
                (op, dispatch(&inner, req))
            }
            Err(e) => {
                inner.requests.errors.fetch_add(1, Ordering::Relaxed);
                counter_add(
                    "serve_requests_total",
                    &[("type", "malformed"), ("status", "error")],
                    1,
                );
                (0, Response::Error { message: e.to_string() })
            }
        };
        let bytes = wire::encode_response(&response);
        if wire::write_frame(&mut writer, &bytes).is_err() {
            return;
        }
        if op == OP_SHUTDOWN {
            inner.shutdown.store(true, Ordering::SeqCst);
            // Nudge the blocking accept() awake so it observes the flag.
            let _ = TcpStream::connect(inner.listen_addr);
            return;
        }
    }
}

fn opcode_of(req: &Request) -> u8 {
    match req {
        Request::Ingest { .. } => OP_INGEST,
        Request::Forecast { .. } => OP_FORECAST,
        Request::Compress { .. } => OP_COMPRESS,
        Request::Stats => OP_STATS,
        Request::Metrics => OP_METRICS,
        Request::Shutdown => OP_SHUTDOWN,
    }
}

fn dispatch(inner: &Inner, req: Request) -> Response {
    let kind = match req {
        Request::Ingest { .. } => "ingest",
        Request::Forecast { .. } => "forecast",
        Request::Compress { .. } => "compress",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Shutdown => "shutdown",
    };
    let started = Instant::now();
    let result = match req {
        Request::Ingest { series, codec, eps, points } => {
            inner.requests.ingest.fetch_add(1, Ordering::Relaxed);
            handle_ingest(inner, series, codec, eps, points)
        }
        Request::Forecast { spec, series } => {
            inner.requests.forecast.fetch_add(1, Ordering::Relaxed);
            handle_forecast(inner, &spec, series)
        }
        Request::Compress { method, eps, series } => {
            inner.requests.compress.fetch_add(1, Ordering::Relaxed);
            handle_compress(inner, method, eps, series)
        }
        Request::Stats => {
            inner.requests.stats.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Text { text: stats_text(inner) })
        }
        Request::Metrics => {
            inner.requests.metrics.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Text {
                text: telemetry::export::prometheus(&telemetry::global().metrics().snapshot()),
            })
        }
        Request::Shutdown => Ok(Response::ShutdownAck),
    };
    observe("serve_request_seconds", &[("type", kind)], secs(started.elapsed()));
    match result {
        Ok(resp) => {
            counter_add("serve_requests_total", &[("type", kind), ("status", "ok")], 1);
            resp
        }
        Err(ServeError::Overloaded { depth }) => {
            inner.requests.overloaded.fetch_add(1, Ordering::Relaxed);
            counter_add("serve_requests_total", &[("type", kind), ("status", "overloaded")], 1);
            Response::Overloaded { depth: depth as u32 }
        }
        Err(e) => {
            inner.requests.errors.fetch_add(1, Ordering::Relaxed);
            counter_add("serve_requests_total", &[("type", kind), ("status", "error")], 1);
            Response::Error { message: e.to_string() }
        }
    }
}

fn handle_ingest(
    inner: &Inner,
    series: u64,
    codec_tag: u8,
    eps: f64,
    points: Vec<(i64, f64)>,
) -> Result<Response, ServeError> {
    let id = SeriesId(series);
    if inner.store.series_len(id).is_err() {
        let codec =
            ChunkCodec::from_tag(codec_tag).map_err(|e| ServeError::Store(e.to_string()))?;
        inner.store.create_series(id, codec, eps).map_err(|e| ServeError::Store(e.to_string()))?;
    }
    let appended = points.len();
    inner.store.append_batch(id, points).map_err(|e| ServeError::Store(e.to_string()))?;
    let total = inner.store.series_len(id).map_err(|e| ServeError::Store(e.to_string()))?;
    counter_add("serve_ingested_points_total", &[], appended as u64);
    Ok(Response::Ingested { total_points: total as u64 })
}

fn handle_forecast(
    inner: &Inner,
    spec: &crate::registry::ModelSpec,
    series: u64,
) -> Result<Response, ServeError> {
    let entry = inner.registry.get(spec)?;
    let id = SeriesId(series);
    let view = inner.store.read(id).map_err(|_| ServeError::UnknownSeries(series))?;
    let len = view.len();
    if len < entry.input_len {
        return Err(ServeError::SeriesTooShort { needed: entry.input_len, got: len });
    }
    // The trailing window, streamed straight off the chunk decoders.
    let window: Vec<f64> = view.iter_values().skip(len - entry.input_len).collect();
    let values = inner.scheduler.forecast(entry, window)?;
    Ok(Response::Forecast { values })
}

fn handle_compress(
    inner: &Inner,
    method_tag: u8,
    eps: f64,
    series: u64,
) -> Result<Response, ServeError> {
    let method = match method_tag {
        1 => Method::Pmc,
        2 => Method::Swing,
        3 => Method::Sz,
        other => return Err(ServeError::Store(format!("unknown compress method tag {other}"))),
    };
    let id = SeriesId(series);
    let view = inner.store.read(id).map_err(|_| ServeError::UnknownSeries(series))?;
    let compressed = compression::compress_source(&view, method, eps)
        .map_err(|e| ServeError::Store(e.to_string()))?;
    Ok(Response::Compressed {
        points: view.len() as u64,
        segments: compressed.num_segments as u32,
        payload: compressed.bytes,
    })
}

fn stats_text(inner: &Inner) -> String {
    let r = &inner.requests;
    let (hits, misses, evictions) = inner.registry.stats();
    let s = inner.scheduler.stats();
    let total = r.ingest.load(Ordering::Relaxed)
        + r.forecast.load(Ordering::Relaxed)
        + r.compress.load(Ordering::Relaxed)
        + r.stats.load(Ordering::Relaxed)
        + r.metrics.load(Ordering::Relaxed);
    let mut out = String::new();
    let mut line = |k: &str, v: u64| {
        out.push_str(k);
        out.push('=');
        out.push_str(&v.to_string());
        out.push('\n');
    };
    line("requests_total", total);
    line("ingest_requests", r.ingest.load(Ordering::Relaxed));
    line("forecast_requests", r.forecast.load(Ordering::Relaxed));
    line("compress_requests", r.compress.load(Ordering::Relaxed));
    line("errors", r.errors.load(Ordering::Relaxed));
    line("overloaded", r.overloaded.load(Ordering::Relaxed));
    line("batches", s.batches.load(Ordering::Relaxed));
    line("batched_jobs", s.batched_jobs.load(Ordering::Relaxed));
    line("scheduler_rejected", s.rejected.load(Ordering::Relaxed));
    line("registry_hits", hits);
    line("registry_misses", misses);
    line("registry_evictions", evictions);
    line("registry_resident_models", inner.registry.resident_count() as u64);
    line("registry_resident_bytes", inner.registry.resident_bytes() as u64);
    line("store_series", inner.store.num_series() as u64);
    out
}
