//! The length-prefixed binary wire protocol.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by that many payload bytes, capped at [`MAX_FRAME_LEN`] so a
//! hostile length prefix cannot make the server allocate gigabytes.
//! Request payloads start with a one-byte opcode; response payloads start
//! with a one-byte status ([`STATUS_OK`] / [`STATUS_ERROR`] /
//! [`STATUS_OVERLOADED`] — the typed admission-control rejection).
//!
//! All integers are little-endian; floats travel as IEEE-754 bit
//! patterns, so forecasts cross the wire bit-exactly. Strings are a
//! `u16` length plus UTF-8 bytes. Decoding is *total*: every payload
//! goes through the bounds-checked [`compression::ByteReader`] and
//! malformed bytes produce [`WireError`], never a panic (house rule
//! since DESIGN.md §10).
//!
//! ```text
//! request  := u32 len | u8 opcode | body
//! response := u32 len | u8 status | body
//!
//! INGEST   (0x01): u64 series | u8 codec | f64 eps | u32 n | n × (i64 ts, f64 value)
//!       -> ok: u64 total points in the series
//! FORECAST (0x02): spec | u64 series
//!       -> ok: u32 h | h × f64 (bit-exact model output)
//! COMPRESS (0x03): u8 method | f64 eps | u64 series
//!       -> ok: u64 points | u32 segments | u32 len | len bytes
//! STATS    (0x04): (empty)        -> ok: string (key=value lines)
//! METRICS  (0x05): (empty)        -> ok: string (Prometheus text)
//! SHUTDOWN (0x06): (empty)        -> ok: (empty), then the server stops
//!
//! spec := string dataset | string model | u8 method-tag | f64 eps
//!         (method-tag 0 = raw model, eps ignored; 1/2/3 = PMC/SWING/SZ)
//! ```

use std::io::{Read, Write};

use compression::ByteReader;

use crate::registry::ModelSpec;

/// Hard cap on one frame's payload (16 MiB) — bounds per-connection
/// memory against hostile or corrupt length prefixes.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Request opcodes.
pub const OP_INGEST: u8 = 0x01;
/// Forecast request opcode.
pub const OP_FORECAST: u8 = 0x02;
/// Compress request opcode.
pub const OP_COMPRESS: u8 = 0x03;
/// Stats request opcode.
pub const OP_STATS: u8 = 0x04;
/// Metrics (Prometheus dump) request opcode.
pub const OP_METRICS: u8 = 0x05;
/// Graceful shutdown request opcode.
pub const OP_SHUTDOWN: u8 = 0x06;

/// Response status: success, body follows.
pub const STATUS_OK: u8 = 0;
/// Response status: request failed; body is a string message.
pub const STATUS_ERROR: u8 = 1;
/// Response status: admission control rejected the request; body is a
/// `u32` queue depth. The *typed* overload signal — clients should back
/// off and retry, not treat it as a hard failure.
pub const STATUS_OVERLOADED: u8 = 2;

/// A malformed frame or payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn truncated(what: &str) -> WireError {
    WireError(format!("payload truncated reading {what}"))
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Append points to a series (creating it on first touch with the
    /// given chunk codec tag and error bound).
    Ingest {
        /// Series id.
        series: u64,
        /// `store::ChunkCodec` wire tag (0 = Gorilla, 1/2/3 = PMC/Swing/SZ).
        codec: u8,
        /// Error bound for lossy chunk codecs (0.0 for Gorilla).
        eps: f64,
        /// `(timestamp, value)` points in cadence order.
        points: Vec<(i64, f64)>,
    },
    /// Forecast the next `horizon` values of a series with a registry
    /// model.
    Forecast {
        /// Which model to serve.
        spec: ModelSpec,
        /// The series whose trailing window feeds the model.
        series: u64,
    },
    /// Compress a stored series with one of the paper's codecs.
    Compress {
        /// Method tag (1 = PMC, 2 = SWING, 3 = SZ).
        method: u8,
        /// Error bound.
        eps: f64,
        /// The series to compress.
        series: u64,
    },
    /// Server statistics as key=value text.
    Stats,
    /// Prometheus metrics dump.
    Metrics,
    /// Graceful shutdown.
    Shutdown,
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ingest succeeded; total points now in the series.
    Ingested {
        /// Post-append series length.
        total_points: u64,
    },
    /// Forecast succeeded; `values` is the model's horizon, bit-exact.
    Forecast {
        /// Predicted values.
        values: Vec<f64>,
    },
    /// Compress succeeded.
    Compressed {
        /// Points compressed.
        points: u64,
        /// Segments in the compressed representation.
        segments: u32,
        /// The compressed frame bytes.
        payload: Vec<u8>,
    },
    /// Stats or metrics text.
    Text {
        /// The text body.
        text: String,
    },
    /// Shutdown acknowledged.
    ShutdownAck,
    /// The request failed.
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// Admission control rejected the request (typed, retryable).
    Overloaded {
        /// The queue bound that was hit.
        depth: u32,
    },
}

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. `Ok(None)` is a clean end-of-stream (the
/// peer closed between frames); a length prefix over [`MAX_FRAME_LEN`]
/// is an error before any allocation.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(r: &mut ByteReader<'_>, what: &str) -> Result<String, WireError> {
    let len = r.read_u16_le().map_err(|_| truncated(what))? as usize;
    let bytes = r.read_bytes(len).map_err(|_| truncated(what))?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError(format!("{what} is not UTF-8")))
}

fn put_spec(out: &mut Vec<u8>, spec: &ModelSpec) {
    put_str(out, &spec.dataset);
    put_str(out, &spec.model);
    match (&spec.method, spec.eps_bits) {
        (Some(method), Some(bits)) => {
            let tag = match method.as_str() {
                "PMC" => 1u8,
                "SWING" => 2,
                "SZ" => 3,
                _ => 255,
            };
            out.push(tag);
            out.extend_from_slice(&bits.to_le_bytes());
        }
        _ => {
            out.push(0);
            out.extend_from_slice(&0u64.to_le_bytes());
        }
    }
}

fn get_spec(r: &mut ByteReader<'_>) -> Result<ModelSpec, WireError> {
    let dataset = get_str(r, "spec dataset")?;
    let model = get_str(r, "spec model")?;
    let tag = r.read_u8().map_err(|_| truncated("spec method tag"))?;
    let bits = r.read_u64_le().map_err(|_| truncated("spec eps"))?;
    let method = match tag {
        0 => None,
        1 => Some("PMC".to_string()),
        2 => Some("SWING".to_string()),
        3 => Some("SZ".to_string()),
        other => return Err(WireError(format!("unknown method tag {other}"))),
    };
    let eps_bits = method.is_some().then_some(bits);
    Ok(ModelSpec { dataset, model, method, eps_bits })
}

/// Encodes a request payload (opcode + body).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Ingest { series, codec, eps, points } => {
            out.push(OP_INGEST);
            out.extend_from_slice(&series.to_le_bytes());
            out.push(*codec);
            out.extend_from_slice(&eps.to_bits().to_le_bytes());
            out.extend_from_slice(&(points.len() as u32).to_le_bytes());
            for &(ts, value) in points {
                out.extend_from_slice(&ts.to_le_bytes());
                out.extend_from_slice(&value.to_bits().to_le_bytes());
            }
        }
        Request::Forecast { spec, series } => {
            out.push(OP_FORECAST);
            put_spec(&mut out, spec);
            out.extend_from_slice(&series.to_le_bytes());
        }
        Request::Compress { method, eps, series } => {
            out.push(OP_COMPRESS);
            out.push(*method);
            out.extend_from_slice(&eps.to_bits().to_le_bytes());
            out.extend_from_slice(&series.to_le_bytes());
        }
        Request::Stats => out.push(OP_STATS),
        Request::Metrics => out.push(OP_METRICS),
        Request::Shutdown => out.push(OP_SHUTDOWN),
    }
    out
}

/// Decodes a request payload. Total: malformed bytes are an error, and
/// claimed point counts are bounded by the actual payload size before
/// any allocation.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = ByteReader::new(payload);
    let opcode = r.read_u8().map_err(|_| truncated("opcode"))?;
    let req = match opcode {
        OP_INGEST => {
            let series = r.read_u64_le().map_err(|_| truncated("series id"))?;
            let codec = r.read_u8().map_err(|_| truncated("codec tag"))?;
            let eps = f64::from_bits(r.read_u64_le().map_err(|_| truncated("eps"))?);
            let n = r.read_u32_le().map_err(|_| truncated("point count"))? as usize;
            // 16 bytes per point: an honest count can never exceed the
            // remaining payload.
            if n > r.remaining() / 16 {
                return Err(WireError(format!(
                    "ingest claims {n} points but only {} bytes remain",
                    r.remaining()
                )));
            }
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let ts = r.read_u64_le().map_err(|_| truncated("point timestamp"))? as i64;
                let value = f64::from_bits(r.read_u64_le().map_err(|_| truncated("point value"))?);
                points.push((ts, value));
            }
            Request::Ingest { series, codec, eps, points }
        }
        OP_FORECAST => {
            let spec = get_spec(&mut r)?;
            let series = r.read_u64_le().map_err(|_| truncated("series id"))?;
            Request::Forecast { spec, series }
        }
        OP_COMPRESS => {
            let method = r.read_u8().map_err(|_| truncated("method tag"))?;
            let eps = f64::from_bits(r.read_u64_le().map_err(|_| truncated("eps"))?);
            let series = r.read_u64_le().map_err(|_| truncated("series id"))?;
            Request::Compress { method, eps, series }
        }
        OP_STATS => Request::Stats,
        OP_METRICS => Request::Metrics,
        OP_SHUTDOWN => Request::Shutdown,
        other => return Err(WireError(format!("unknown opcode {other:#04x}"))),
    };
    if r.remaining() > 0 {
        return Err(WireError(format!("{} trailing bytes after request", r.remaining())));
    }
    Ok(req)
}

/// Encodes a response payload (status + body).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Ingested { total_points } => {
            out.push(STATUS_OK);
            out.push(OP_INGEST);
            out.extend_from_slice(&total_points.to_le_bytes());
        }
        Response::Forecast { values } => {
            out.push(STATUS_OK);
            out.push(OP_FORECAST);
            out.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Response::Compressed { points, segments, payload } => {
            out.push(STATUS_OK);
            out.push(OP_COMPRESS);
            out.extend_from_slice(&points.to_le_bytes());
            out.extend_from_slice(&segments.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(payload);
        }
        Response::Text { text } => {
            out.push(STATUS_OK);
            out.push(OP_STATS);
            out.extend_from_slice(&(text.len() as u32).to_le_bytes());
            out.extend_from_slice(text.as_bytes());
        }
        Response::ShutdownAck => {
            out.push(STATUS_OK);
            out.push(OP_SHUTDOWN);
        }
        Response::Error { message } => {
            out.push(STATUS_ERROR);
            put_str(&mut out, message);
        }
        Response::Overloaded { depth } => {
            out.push(STATUS_OVERLOADED);
            out.extend_from_slice(&depth.to_le_bytes());
        }
    }
    out
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = ByteReader::new(payload);
    let status = r.read_u8().map_err(|_| truncated("status"))?;
    match status {
        STATUS_ERROR => {
            let message = get_str(&mut r, "error message")?;
            return Ok(Response::Error { message });
        }
        STATUS_OVERLOADED => {
            let depth = r.read_u32_le().map_err(|_| truncated("overload depth"))?;
            return Ok(Response::Overloaded { depth });
        }
        STATUS_OK => {}
        other => return Err(WireError(format!("unknown status {other}"))),
    }
    let opcode = r.read_u8().map_err(|_| truncated("response opcode"))?;
    let resp = match opcode {
        OP_INGEST => {
            let total_points = r.read_u64_le().map_err(|_| truncated("total points"))?;
            Response::Ingested { total_points }
        }
        OP_FORECAST => {
            let n = r.read_u32_le().map_err(|_| truncated("value count"))? as usize;
            if n > r.remaining() / 8 {
                return Err(WireError(format!(
                    "forecast claims {n} values but only {} bytes remain",
                    r.remaining()
                )));
            }
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(f64::from_bits(r.read_u64_le().map_err(|_| truncated("value"))?));
            }
            Response::Forecast { values }
        }
        OP_COMPRESS => {
            let points = r.read_u64_le().map_err(|_| truncated("point count"))?;
            let segments = r.read_u32_le().map_err(|_| truncated("segment count"))?;
            let len = r.read_u32_le().map_err(|_| truncated("payload length"))? as usize;
            let payload = r.read_bytes(len).map_err(|_| truncated("payload"))?.to_vec();
            Response::Compressed { points, segments, payload }
        }
        OP_STATS => {
            let len = r.read_u32_le().map_err(|_| truncated("text length"))? as usize;
            let bytes = r.read_bytes(len).map_err(|_| truncated("text"))?;
            let text = String::from_utf8(bytes.to_vec())
                .map_err(|_| WireError("text is not UTF-8".into()))?;
            Response::Text { text }
        }
        OP_SHUTDOWN => Response::ShutdownAck,
        other => return Err(WireError(format!("unknown response opcode {other:#04x}"))),
    };
    if r.remaining() > 0 {
        return Err(WireError(format!("{} trailing bytes after response", r.remaining())));
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_raw() -> ModelSpec {
        ModelSpec { dataset: "ETTm1".into(), model: "DLinear".into(), method: None, eps_bits: None }
    }

    fn spec_lossy() -> ModelSpec {
        ModelSpec {
            dataset: "Solar".into(),
            model: "GRU".into(),
            method: Some("SWING".into()),
            eps_bits: Some(0.05f64.to_bits()),
        }
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Ingest {
                series: 7,
                codec: 0,
                eps: 0.0,
                points: vec![(0, 1.5), (60, -2.25), (120, f64::NAN)],
            },
            Request::Forecast { spec: spec_raw(), series: 7 },
            Request::Forecast { spec: spec_lossy(), series: 9 },
            Request::Compress { method: 1, eps: 0.05, series: 7 },
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in reqs {
            let bytes = encode_request(&req);
            let back = decode_request(&bytes).expect("encoded request decodes");
            // NaN-tolerant comparison through the debug form (the NaN bit
            // pattern itself is checked below).
            assert_eq!(format!("{back:?}"), format!("{req:?}"));
        }
        // Values travel as bit patterns: a NaN survives exactly.
        let bytes = encode_request(&Request::Ingest {
            series: 1,
            codec: 0,
            eps: 0.0,
            points: vec![(0, f64::NAN)],
        });
        match decode_request(&bytes).unwrap() {
            Request::Ingest { points, .. } => {
                assert_eq!(points[0].1.to_bits(), f64::NAN.to_bits())
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Ingested { total_points: 42 },
            Response::Forecast { values: vec![1.5, -0.25, f64::MIN_POSITIVE] },
            Response::Compressed { points: 100, segments: 7, payload: vec![1, 2, 3] },
            Response::Text { text: "requests_total=5\n".into() },
            Response::ShutdownAck,
            Response::Error { message: "unknown series #9".into() },
            Response::Overloaded { depth: 256 },
        ];
        for resp in resps {
            let bytes = encode_response(&resp);
            let back = decode_response(&bytes).expect("encoded response decodes");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panics() {
        // Empty, unknown opcode, truncations at every prefix length, and
        // hostile counts all produce WireError.
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0xEE]).is_err());
        assert!(decode_response(&[]).is_err());
        assert!(decode_response(&[9]).is_err());
        let good = encode_request(&Request::Forecast { spec: spec_lossy(), series: 3 });
        for cut in 1..good.len() {
            assert!(decode_request(&good[..cut]).is_err(), "truncation at {cut} must fail");
        }
        // Hostile ingest count: claims 1M points with an empty body.
        let mut evil = Vec::new();
        evil.push(OP_INGEST);
        evil.extend_from_slice(&1u64.to_le_bytes());
        evil.push(0);
        evil.extend_from_slice(&0u64.to_le_bytes());
        evil.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert!(decode_request(&evil).is_err());
        // Trailing garbage after a well-formed request.
        let mut trailing = encode_request(&Request::Stats);
        trailing.push(0);
        assert!(decode_request(&trailing).is_err());
    }

    #[test]
    fn frames_roundtrip_and_cap_hostile_lengths() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF reads as None");

        let mut evil = Vec::new();
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = std::io::Cursor::new(evil);
        assert!(read_frame(&mut r).is_err(), "oversized length prefix must be rejected");
    }
}
