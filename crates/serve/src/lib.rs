//! # serve — the forecast-serving front end
//!
//! Turns the batch evaluation harness into an online service (ROADMAP
//! item 4, DESIGN.md §14): a threaded `std::net` TCP server speaking a
//! small length-prefixed binary protocol ([`wire`]) with `ingest`,
//! `forecast`, `compress`, `stats`, and `metrics` request types.
//!
//! Three subsystems compose it:
//!
//! * [`registry::ModelRegistry`] — a warm in-memory model fleet loaded
//!   from an [`evalcore::artifact::ArtifactStore`] directory, keyed by
//!   `(dataset, model, method, eps)`. Cold keys fault in lazily from the
//!   manifest ([`ArtifactStore::list_keys`]) and the registry evicts
//!   least-recently-used models when its byte budget fills.
//! * [`scheduler::Scheduler`] — the batching heart: concurrent forecast
//!   requests for the same model are coalesced into single
//!   [`forecast::model::Forecaster::predict_batch`] calls (bounded wait,
//!   bounded batch), behind bounded queues with admission control — a
//!   full queue rejects with a typed `Overloaded` response instead of
//!   growing memory.
//! * [`server::Server`] — the TCP front end routing requests: `ingest`
//!   appends points into a [`store::TsStore`], `forecast` windows the
//!   last `input_len` points straight off store chunks via
//!   [`tsdata::series::SeriesSource`], `compress` streams a series
//!   through the paper's error-bounded codecs.
//!
//! Served forecasts are **bit-identical** to offline
//! [`forecast::model::Forecaster::predict`]: batching stacks windows
//! row-wise and `predict_batch` rows are pinned bitwise to the
//! per-window path (`forecast/tests/batch_identity.rs`), asserted
//! end-to-end by this crate's loopback integration test.
//!
//! [`ArtifactStore::list_keys`]: evalcore::artifact::ArtifactStore::list_keys

pub mod client;
pub mod registry;
pub mod scheduler;
pub mod server;
pub mod wire;

pub use client::Client;
pub use registry::{ModelRegistry, ModelSpec, RegistryConfig};
pub use scheduler::SchedulerConfig;
pub use server::{ServeConfig, Server};

/// Errors surfaced by the serving path. [`ServeError::Overloaded`] is the
/// admission-control rejection and travels the wire as its own typed
/// response status, so clients can distinguish "shed load, retry later"
/// from a hard failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request queue is full; the request was rejected without
    /// queueing. Carries the configured queue depth for diagnostics.
    Overloaded {
        /// The admission-control bound that was hit.
        depth: usize,
    },
    /// No artifact in the registry's manifest matches the model spec.
    UnknownModel(String),
    /// The series id has never been ingested.
    UnknownSeries(u64),
    /// The series is shorter than the model's input window.
    SeriesTooShort {
        /// Window length the model needs.
        needed: usize,
        /// Points the series holds.
        got: usize,
    },
    /// The store rejected an operation (cadence violation, codec error).
    Store(String),
    /// Model fault-in or prediction failed.
    Model(String),
    /// A malformed wire frame or an I/O failure on the connection.
    Transport(String),
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "overloaded: request queue at its bound of {depth}")
            }
            ServeError::UnknownModel(spec) => write!(f, "unknown model {spec}"),
            ServeError::UnknownSeries(id) => write!(f, "unknown series #{id}"),
            ServeError::SeriesTooShort { needed, got } => {
                write!(f, "series too short: model needs {needed} points, series has {got}")
            }
            ServeError::Store(msg) => write!(f, "store: {msg}"),
            ServeError::Model(msg) => write!(f, "model: {msg}"),
            ServeError::Transport(msg) => write!(f, "transport: {msg}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}
