//! A small blocking client for the wire protocol — used by the loopback
//! tests, the load-generator bench, and the smoke binary; also the
//! reference implementation for external clients.

use std::net::{TcpStream, ToSocketAddrs};

use crate::registry::ModelSpec;
use crate::wire::{self, Request, Response};
use crate::ServeError;

/// A blocking connection to a serve instance. One request is in flight
/// at a time (the protocol is strictly request/response per connection);
/// open one client per concurrent stream.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServeError::Transport(e.to_string()))?;
        stream.set_nodelay(true).map_err(|e| ServeError::Transport(e.to_string()))?;
        Ok(Client { stream })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        let payload = wire::encode_request(req);
        wire::write_frame(&mut self.stream, &payload)
            .map_err(|e| ServeError::Transport(e.to_string()))?;
        let resp = wire::read_frame(&mut self.stream)
            .map_err(|e| ServeError::Transport(e.to_string()))?
            .ok_or_else(|| ServeError::Transport("server closed the connection".into()))?;
        let resp =
            wire::decode_response(&resp).map_err(|e| ServeError::Transport(e.to_string()))?;
        match resp {
            Response::Error { message } => Err(ServeError::Model(message)),
            Response::Overloaded { depth } => Err(ServeError::Overloaded { depth: depth as usize }),
            other => Ok(other),
        }
    }

    /// Appends points to a series (creating it on first touch with the
    /// given chunk codec tag and error bound). Returns the series' total
    /// point count after the append.
    pub fn ingest(
        &mut self,
        series: u64,
        codec: u8,
        eps: f64,
        points: &[(i64, f64)],
    ) -> Result<u64, ServeError> {
        match self.call(&Request::Ingest { series, codec, eps, points: to_vec(points) })? {
            Response::Ingested { total_points } => Ok(total_points),
            other => Err(unexpected("ingest", &other)),
        }
    }

    /// Forecasts the next horizon of `series` with the model `spec`.
    /// Values are bit-identical to offline `Forecaster::predict`.
    pub fn forecast(&mut self, spec: &ModelSpec, series: u64) -> Result<Vec<f64>, ServeError> {
        match self.call(&Request::Forecast { spec: spec.clone(), series })? {
            Response::Forecast { values } => Ok(values),
            other => Err(unexpected("forecast", &other)),
        }
    }

    /// Compresses a stored series; returns `(points, segments, bytes)`.
    pub fn compress(
        &mut self,
        method: u8,
        eps: f64,
        series: u64,
    ) -> Result<(u64, u32, Vec<u8>), ServeError> {
        match self.call(&Request::Compress { method, eps, series })? {
            Response::Compressed { points, segments, payload } => Ok((points, segments, payload)),
            other => Err(unexpected("compress", &other)),
        }
    }

    /// The server's key=value stats text.
    pub fn stats(&mut self) -> Result<String, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Text { text } => Ok(text),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// The server's Prometheus metrics dump.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        match self.call(&Request::Metrics)? {
            Response::Text { text } => Ok(text),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Asks the server to shut down; returns once the ack arrives.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }
}

fn to_vec(points: &[(i64, f64)]) -> Vec<(i64, f64)> {
    points.to_vec()
}

fn unexpected(what: &str, resp: &Response) -> ServeError {
    ServeError::Transport(format!("unexpected response to {what}: {resp:?}"))
}
