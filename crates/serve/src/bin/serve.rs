//! The `serve` binary: a forecast-serving front end over an artifact
//! directory.
//!
//! ```text
//! serve --artifacts runs/artifacts [--addr 127.0.0.1:7878] [--budget-mb 256]
//!       [--queue-depth 256] [--max-batch 64] [--batch-wait-us 200]
//!       [--workers 2] [--warm 16] [--metrics FILE]
//! ```
//!
//! Prints `serve: listening on ADDR` once the socket is bound (the smoke
//! harness and scripts parse this line), then serves until a `shutdown`
//! request arrives. With `--metrics FILE` the final Prometheus dump is
//! written there on exit.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use serve::registry::RegistryConfig;
use serve::{ModelRegistry, SchedulerConfig, ServeConfig, Server};

struct Args {
    artifacts: String,
    addr: String,
    budget_mb: usize,
    queue_depth: usize,
    max_batch: usize,
    batch_wait_us: u64,
    workers: usize,
    warm: usize,
    metrics: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve --artifacts DIR [--addr HOST:PORT] [--budget-mb N] \
         [--queue-depth N] [--max-batch N] [--batch-wait-us N] [--workers N] \
         [--warm N] [--metrics FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        artifacts: String::new(),
        addr: "127.0.0.1:7878".into(),
        budget_mb: 256,
        queue_depth: 256,
        max_batch: 64,
        batch_wait_us: 200,
        workers: 2,
        warm: 0,
        metrics: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| usage_missing(name));
        match flag.as_str() {
            "--artifacts" => args.artifacts = value("--artifacts"),
            "--addr" => args.addr = value("--addr"),
            "--budget-mb" => args.budget_mb = parse_num(&value("--budget-mb")),
            "--queue-depth" => args.queue_depth = parse_num(&value("--queue-depth")),
            "--max-batch" => args.max_batch = parse_num(&value("--max-batch")),
            "--batch-wait-us" => args.batch_wait_us = parse_num(&value("--batch-wait-us")) as u64,
            "--workers" => args.workers = parse_num(&value("--workers")),
            "--warm" => args.warm = parse_num(&value("--warm")),
            "--metrics" => args.metrics = Some(value("--metrics")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("serve: unknown flag {other}");
                usage();
            }
        }
    }
    if args.artifacts.is_empty() {
        eprintln!("serve: --artifacts is required");
        usage();
    }
    args
}

fn usage_missing(name: &str) -> String {
    eprintln!("serve: {name} needs a value");
    usage();
}

fn parse_num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("serve: expected a number, got {s:?}");
        usage();
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    telemetry::set_enabled(true);

    let registry = match ModelRegistry::open(
        &args.artifacts,
        RegistryConfig { budget_bytes: args.budget_mb << 20 },
    ) {
        Ok(r) => Arc::new(r),
        Err(e) => {
            eprintln!("serve: opening artifact store {}: {e}", args.artifacts);
            return ExitCode::FAILURE;
        }
    };
    let specs = registry.specs();
    eprintln!("serve: {} model spec(s) in the manifest", specs.len());
    for spec in &specs {
        eprintln!("serve:   {spec}");
    }
    if args.warm > 0 {
        match registry.warm(args.warm) {
            Ok(n) => eprintln!("serve: warmed {n} model(s)"),
            Err(e) => {
                eprintln!("serve: warm-up failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let config = ServeConfig {
        addr: args.addr.clone(),
        scheduler: SchedulerConfig {
            queue_depth: args.queue_depth,
            max_batch: args.max_batch,
            batch_wait: Duration::from_micros(args.batch_wait_us),
            workers: args.workers,
        },
        store: Default::default(),
    };
    let mut server = match Server::start(config, registry) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The parseable readiness line (stdout, flushed).
    println!("serve: listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Block until a shutdown request flips the accept loop.
    server.wait();

    if let Some(path) = args.metrics {
        let dump = telemetry::export::prometheus(&telemetry::global().metrics().snapshot());
        if let Err(e) = std::fs::write(&path, dump) {
            eprintln!("serve: writing metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("serve: metrics written to {path}");
    }
    eprintln!("serve: shut down cleanly");
    ExitCode::SUCCESS
}
