//! End-to-end smoke for the serving stack, used by CI's serve-smoke job.
//!
//! Fits a DLinear offline, saves it into a fresh artifact store, launches
//! the real `serve` binary as a child process against that store, then
//! over loopback: ingests a series, requests a forecast, and asserts the
//! served values are **bit-identical** to offline
//! `Forecaster::predict_batch` on the same trailing window. Also checks
//! `stats` and the Prometheus `metrics` dump (which must contain
//! `serve_requests_total`), writes the dump to `serve-smoke.prom`, and
//! shuts the server down cleanly.
//!
//! ```text
//! serve-smoke [--out DIR]   # DIR defaults to a fresh temp directory
//! ```

use std::io::BufRead;
use std::process::{Command, ExitCode, Stdio};

use evalcore::artifact::{ArtifactKey, ArtifactStore};
use forecast::{build_model, BuildOptions, ModelKind, Profile};
use neural::tensor::Tensor;
use serve::registry::ModelSpec;
use serve::Client;
use tsdata::datasets::{generate, DatasetKind, GenOptions};
use tsdata::split::{split, SplitSpec};

const INPUT_LEN: usize = 16;
const HORIZON: usize = 4;
const SEED: u64 = 40;
const DATA_SEED: u64 = 7;
const SERIES: u64 = 1;

fn fail(msg: &str) -> ExitCode {
    eprintln!("serve-smoke: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut out_dir: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_dir = it.next(),
            other => {
                eprintln!("serve-smoke: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let out = std::path::PathBuf::from(out_dir.unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("serve-smoke-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }));
    if let Err(e) = std::fs::create_dir_all(&out) {
        return fail(&format!("creating {}: {e}", out.display()));
    }

    // 1. Fit offline and save the artifact.
    let data = generate(
        DatasetKind::ETTm1,
        GenOptions { len: Some(360), channels: Some(1), seed: DATA_SEED },
    );
    let s = match split(&data, SplitSpec::default()) {
        Ok(s) => s,
        Err(e) => return fail(&format!("split: {e}")),
    };
    let mut model = build_model(
        ModelKind::DLinear,
        BuildOptions {
            input_len: INPUT_LEN,
            horizon: HORIZON,
            season: None,
            seed: SEED,
            profile: Profile::Fast,
        },
    );
    if let Err(e) = model.fit(&s.train, &s.val) {
        return fail(&format!("fit: {e}"));
    }
    let key = ArtifactKey {
        dataset: "ETTm1".into(),
        model: "DLinear".into(),
        seed: SEED,
        profile: "Fast".into(),
        method: None,
        eps_bits: None,
        input_len: INPUT_LEN,
        horizon: HORIZON,
        len: Some(360),
        channels: Some(1),
        data_seed: DATA_SEED,
    };
    let artifacts = out.join("artifacts");
    let store = match ArtifactStore::open(&artifacts) {
        Ok(s) => s,
        Err(e) => return fail(&format!("opening store: {e}")),
    };
    let state = match model.save_state() {
        Ok(st) => st,
        Err(e) => return fail(&format!("save_state: {e}")),
    };
    if let Err(e) = store.save(&key, &state) {
        return fail(&format!("saving artifact: {e}"));
    }

    // 2. Launch the real serve binary against the store.
    let serve_bin = match std::env::current_exe() {
        Ok(me) => me.with_file_name(if cfg!(windows) { "serve.exe" } else { "serve" }),
        Err(e) => return fail(&format!("current_exe: {e}")),
    };
    let mut child = match Command::new(&serve_bin)
        .args(["--artifacts", &artifacts.to_string_lossy(), "--addr", "127.0.0.1:0", "--warm", "8"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => return fail(&format!("spawning {}: {e}", serve_bin.display())),
    };
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(rest) = line.strip_prefix("serve: listening on ") {
                    break rest.trim().to_string();
                }
            }
            _ => {
                let _ = child.kill();
                return fail("server exited before printing its address");
            }
        }
    };
    eprintln!("serve-smoke: server up at {addr}");

    let verdict = run_checks(&addr, &out, model.as_ref(), s.test.target().values());
    let status = match child.wait() {
        Ok(st) => st,
        Err(e) => return fail(&format!("waiting for server: {e}")),
    };
    if !status.success() {
        return fail(&format!("server exited with {status}"));
    }
    match verdict {
        Ok(()) => {
            eprintln!("serve-smoke: OK");
            ExitCode::SUCCESS
        }
        Err(msg) => fail(&msg),
    }
}

fn run_checks(
    addr: &str,
    out: &std::path::Path,
    model: &dyn forecast::Forecaster,
    test_vals: &[f64],
) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;

    // 3. Ingest the test subset (minute cadence) and forecast.
    let points: Vec<(i64, f64)> =
        test_vals.iter().enumerate().map(|(i, &v)| (i as i64 * 60, v)).collect();
    let total = client.ingest(SERIES, 0, 0.0, &points).map_err(|e| format!("ingest: {e}"))?;
    if total != points.len() as u64 {
        return Err(format!("ingest reported {total} points, sent {}", points.len()));
    }
    let spec = ModelSpec {
        dataset: "ETTm1".into(),
        model: "DLinear".into(),
        method: None,
        eps_bits: None,
    };
    let served = client.forecast(&spec, SERIES).map_err(|e| format!("forecast: {e}"))?;

    // 4. Bit-identity against offline predict_batch on the same window.
    let window = &test_vals[test_vals.len() - INPUT_LEN..];
    let mut staged = Tensor::zeros(1, INPUT_LEN);
    staged.data_mut().copy_from_slice(window);
    let offline = model.predict_batch(&staged).map_err(|e| format!("offline predict: {e}"))?;
    if served.len() != HORIZON {
        return Err(format!("served horizon {} != {HORIZON}", served.len()));
    }
    for (i, (s, o)) in served.iter().zip(offline.data().iter()).enumerate() {
        if s.to_bits() != o.to_bits() {
            return Err(format!("served[{i}] = {s:e} is not bit-identical to offline {o:e}"));
        }
    }
    eprintln!("serve-smoke: forecast bit-identical to offline predict_batch");

    // 5. Stats + metrics sanity.
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    for needle in ["requests_total=", "forecast_requests=1", "ingest_requests=1"] {
        if !stats.contains(needle) {
            return Err(format!("stats text missing {needle:?}:\n{stats}"));
        }
    }
    let metrics = client.metrics().map_err(|e| format!("metrics: {e}"))?;
    if !metrics.contains("serve_requests_total") {
        return Err(format!("metrics dump missing serve_requests_total:\n{metrics}"));
    }
    let prom = out.join("serve-smoke.prom");
    std::fs::write(&prom, &metrics).map_err(|e| format!("writing {}: {e}", prom.display()))?;
    eprintln!("serve-smoke: metrics written to {}", prom.display());

    // 6. Clean shutdown.
    client.shutdown_server().map_err(|e| format!("shutdown: {e}"))?;
    Ok(())
}
