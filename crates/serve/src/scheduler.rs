//! The batching scheduler: request coalescing + admission control.
//!
//! Forecast jobs enter through a bounded submit queue guarded by an
//! inflight counter — when [`SchedulerConfig::queue_depth`] jobs are in
//! flight the next submit is rejected *before queueing* with
//! [`ServeError::Overloaded`], so memory stays bounded under any load.
//!
//! A dedicated coalescing thread drains the submit queue: on the first
//! job it opens a batching window of [`SchedulerConfig::batch_wait`],
//! groups arrivals by registry entry id, flushes any group that reaches
//! [`SchedulerConfig::max_batch`] immediately, and flushes everything
//! when the window closes. Flushed batches go to a worker pool that
//! stacks the windows into one `[n, input_len]` tensor and makes a
//! single [`Forecaster::predict_batch`] call — `n` requests pay one
//! dispatch. Rows come back to each requester bit-identical to a
//! per-window [`Forecaster::predict`] (the batch-identity contract
//! pinned in `forecast/tests/batch_identity.rs`).
//!
//! [`Forecaster::predict`]: forecast::Forecaster::predict
//! [`Forecaster::predict_batch`]: forecast::Forecaster::predict_batch

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};
use neural::tensor::Tensor;
use telemetry::{counter_add, observe, secs};

use crate::registry::ModelEntry;
use crate::ServeError;

/// Occupancy histogram buckets (jobs per coalesced batch).
const OCCUPANCY_BOUNDS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Admission bound: maximum forecast jobs in flight (queued or
    /// executing). The submit queue is sized to this too.
    pub queue_depth: usize,
    /// Maximum jobs coalesced into one `predict_batch` call.
    pub max_batch: usize,
    /// How long the coalescing window stays open after the first job
    /// arrives, waiting for same-model companions.
    pub batch_wait: Duration,
    /// Worker threads executing flushed batches.
    pub workers: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            queue_depth: 256,
            max_batch: 64,
            batch_wait: Duration::from_micros(200),
            workers: 2,
        }
    }
}

struct Job {
    entry: Arc<ModelEntry>,
    window: Vec<f64>,
    reply: Sender<Result<Vec<f64>, String>>,
}

struct Batch {
    entry: Arc<ModelEntry>,
    jobs: Vec<Job>,
}

/// Cumulative scheduler counters (kept independently of the telemetry
/// registry so `stats` works even with telemetry disabled).
#[derive(Debug, Default)]
pub struct SchedulerStats {
    /// `predict_batch` calls made.
    pub batches: AtomicU64,
    /// Jobs that travelled inside those batches.
    pub batched_jobs: AtomicU64,
    /// Jobs rejected by admission control.
    pub rejected: AtomicU64,
}

/// The batching scheduler. Dropping it disconnects the submit queue;
/// the coalescing thread flushes what it holds and the pool drains.
pub struct Scheduler {
    submit: Sender<Job>,
    inflight: Arc<AtomicUsize>,
    stats: Arc<SchedulerStats>,
    config: SchedulerConfig,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Starts the coalescing thread and the worker pool.
    pub fn start(config: SchedulerConfig) -> Scheduler {
        assert!(config.queue_depth >= 1 && config.max_batch >= 1 && config.workers >= 1);
        let (submit_tx, submit_rx) = channel::bounded::<Job>(config.queue_depth);
        let (batch_tx, batch_rx) = channel::bounded::<Batch>(config.queue_depth);
        let stats = Arc::new(SchedulerStats::default());
        let mut threads = Vec::new();

        let coalescer_stats = Arc::clone(&stats);
        let coalescer_cfg = config;
        threads.push(
            std::thread::Builder::new()
                .name("serve-coalesce".into())
                .spawn(move || coalesce_loop(submit_rx, batch_tx, coalescer_cfg, coalescer_stats))
                .expect("spawn coalescer"),
        );
        for i in 0..config.workers {
            let rx = batch_rx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(rx))
                    .expect("spawn worker"),
            );
        }
        drop(batch_rx);
        Scheduler {
            submit: submit_tx,
            inflight: Arc::new(AtomicUsize::new(0)),
            stats,
            config,
            threads,
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// Submits one forecast job and blocks for its result. A `window`
    /// that is not exactly `entry.input_len` long is rejected with a
    /// typed error before admission (it would otherwise panic a batch
    /// worker during staging). Fails fast with [`ServeError::Overloaded`]
    /// when `queue_depth` jobs are in flight; the admission slot is held
    /// by an RAII guard, so every exit — success, error, or panic —
    /// releases it.
    pub fn forecast(
        &self,
        entry: Arc<ModelEntry>,
        window: Vec<f64>,
    ) -> Result<Vec<f64>, ServeError> {
        if window.len() != entry.input_len {
            return Err(ServeError::Model(format!(
                "window length {} does not match model input_len {}",
                window.len(),
                entry.input_len
            )));
        }
        let depth = self.config.queue_depth;
        let _slot = match AdmissionGuard::try_acquire(&self.inflight, depth) {
            Some(guard) => guard,
            None => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                counter_add("serve_rejected_total", &[], 1);
                return Err(ServeError::Overloaded { depth });
            }
        };
        self.forecast_admitted(entry, window)
    }

    fn forecast_admitted(
        &self,
        entry: Arc<ModelEntry>,
        window: Vec<f64>,
    ) -> Result<Vec<f64>, ServeError> {
        let (reply_tx, reply_rx) = channel::bounded(1);
        let job = Job { entry, window, reply: reply_tx };
        match self.submit.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                // The queue bound equals the admission bound, so this is
                // only reachable in a teardown race; report it as overload.
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                counter_add("serve_rejected_total", &[], 1);
                return Err(ServeError::Overloaded { depth: self.config.queue_depth });
            }
            Err(TrySendError::Disconnected(_)) => return Err(ServeError::ShuttingDown),
        }
        match reply_rx.recv() {
            Ok(Ok(values)) => Ok(values),
            Ok(Err(msg)) => Err(ServeError::Model(msg)),
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }
}

/// An occupied admission slot. Acquisition is one `fetch_add` with
/// losers backing out; release happens in `Drop`, so no early return,
/// `?`, or panic between admission and reply can leak the slot (the
/// leak class the old manual `fetch_add`/`fetch_sub` pairs allowed).
struct AdmissionGuard<'a> {
    inflight: &'a AtomicUsize,
}

impl<'a> AdmissionGuard<'a> {
    /// Reserves a slot if fewer than `depth` jobs are in flight.
    fn try_acquire(inflight: &'a AtomicUsize, depth: usize) -> Option<AdmissionGuard<'a>> {
        if inflight.fetch_add(1, Ordering::AcqRel) >= depth {
            inflight.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(AdmissionGuard { inflight })
    }
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        // Replace the live sender with a dead one so the coalescer sees
        // disconnect, then join the pipeline.
        let (dead_tx, _) = channel::bounded(1);
        self.submit = dead_tx;
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn coalesce_loop(
    submit: Receiver<Job>,
    batches: Sender<Batch>,
    config: SchedulerConfig,
    stats: Arc<SchedulerStats>,
) {
    let flush = |pending: &mut HashMap<u64, Batch>| {
        for (_, batch) in pending.drain() {
            let n = batch.jobs.len();
            stats.batches.fetch_add(1, Ordering::Relaxed);
            stats.batched_jobs.fetch_add(n as u64, Ordering::Relaxed);
            counter_add("serve_batches_total", &[], 1);
            counter_add("serve_batch_jobs_total", &[], n as u64);
            telemetry::global().metrics().observe_with(
                "serve_batch_occupancy",
                &[],
                &OCCUPANCY_BOUNDS,
                n as f64,
            );
            if batches.send(batch).is_err() {
                return; // workers gone; replies drop and callers see ShuttingDown
            }
        }
    };
    loop {
        // Idle: block for the first job of the next batching window.
        let first = match submit.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let deadline = Instant::now() + config.batch_wait;
        let mut pending: HashMap<u64, Batch> = HashMap::new();
        let first_id = first.entry.id;
        pending.insert(first_id, Batch { entry: Arc::clone(&first.entry), jobs: vec![first] });
        let mut disconnected = false;
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match submit.recv_timeout(deadline - now) {
                Ok(job) => {
                    let id = job.entry.id;
                    let batch = pending.entry(id).or_insert_with(|| Batch {
                        entry: Arc::clone(&job.entry),
                        jobs: Vec::new(),
                    });
                    batch.jobs.push(job);
                    if batch.jobs.len() >= config.max_batch {
                        let full = pending.remove(&id).expect("just inserted");
                        let mut one = HashMap::new();
                        one.insert(id, full);
                        flush(&mut one);
                    }
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        flush(&mut pending);
        if disconnected {
            return;
        }
    }
}

fn worker_loop(batches: Receiver<Batch>) {
    while let Ok(batch) = batches.recv() {
        run_batch(batch);
    }
}

fn run_batch(batch: Batch) {
    let n = batch.jobs.len();
    let input_len = batch.entry.input_len;
    let horizon = batch.entry.horizon;
    let mut windows = Tensor::zeros(n, input_len);
    for (row, job) in batch.jobs.iter().enumerate() {
        windows.data_mut()[row * input_len..(row + 1) * input_len].copy_from_slice(&job.window);
    }
    let started = Instant::now();
    // The model call is trapped: a panicking `predict_batch` must become
    // an error reply to every job in the batch, not a dead worker thread
    // that silently shrinks the pool for the rest of the process.
    // (parking_lot mutexes do not poison, so the entry stays usable.)
    let result = catch_unwind(AssertUnwindSafe(|| {
        let model = batch.entry.model.lock();
        model.predict_batch(&windows)
    }));
    observe(
        "serve_predict_seconds",
        &[("model", &batch.entry.spec.model)],
        secs(started.elapsed()),
    );
    let preds = match result {
        Ok(Ok(t)) => t,
        Ok(Err(e)) => {
            let msg = e.to_string();
            for job in batch.jobs {
                let _ = job.reply.send(Err(msg.clone()));
            }
            return;
        }
        Err(payload) => {
            counter_add("serve_predict_panics_total", &[], 1);
            let msg = format!("predict_batch panicked: {}", panic_text(payload.as_ref()));
            for job in batch.jobs {
                let _ = job.reply.send(Err(msg.clone()));
            }
            return;
        }
    };
    if preds.rows() != n || preds.cols() != horizon {
        let msg = format!("predict_batch returned {:?}, expected [{n}, {horizon}]", preds.shape());
        for job in batch.jobs {
            let _ = job.reply.send(Err(msg.clone()));
        }
        return;
    }
    for (row, job) in batch.jobs.into_iter().enumerate() {
        let values = preds.data()[row * horizon..(row + 1) * horizon].to_vec();
        let _ = job.reply.send(Ok(values));
    }
}

/// Extracts a readable message from a panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelEntry, ModelSpec};
    use evalcore::artifact::ArtifactKey;
    use forecast::{build_model, BuildOptions, Profile};
    use tsdata::datasets::{generate, DatasetKind, GenOptions};
    use tsdata::split::{split, SplitSpec};

    const INPUT_LEN: usize = 16;
    const HORIZON: usize = 4;

    fn fitted_entry(id: u64) -> Arc<ModelEntry> {
        let data =
            generate(DatasetKind::ETTm1, GenOptions { len: Some(360), channels: Some(1), seed: 7 });
        let s = split(&data, SplitSpec::default()).expect("360 points split cleanly");
        let mut model = build_model(
            forecast::ModelKind::DLinear,
            BuildOptions {
                input_len: INPUT_LEN,
                horizon: HORIZON,
                season: None,
                seed: 40,
                profile: Profile::Fast,
            },
        );
        model.fit(&s.train, &s.val).expect("tiny fit succeeds");
        let spec = ModelSpec {
            dataset: "ETTm1".into(),
            model: "DLinear".into(),
            method: None,
            eps_bits: None,
        };
        let key = ArtifactKey {
            dataset: "ETTm1".into(),
            model: "DLinear".into(),
            seed: 40,
            profile: "Fast".into(),
            method: None,
            eps_bits: None,
            input_len: INPUT_LEN,
            horizon: HORIZON,
            len: Some(360),
            channels: Some(1),
            data_seed: 7,
        };
        Arc::new(ModelEntry {
            spec,
            key,
            model: parking_lot::Mutex::new(model),
            input_len: INPUT_LEN,
            horizon: HORIZON,
            bytes: 1024,
            id,
        })
    }

    #[test]
    fn scheduled_forecasts_match_direct_predict_bitwise() {
        let entry = fitted_entry(1);
        let window: Vec<f64> = (0..INPUT_LEN).map(|i| (i as f64 * 0.25).sin()).collect();
        let direct =
            entry.model.lock().predict(std::slice::from_ref(&window)).expect("direct predict");
        let sched = Scheduler::start(SchedulerConfig::default());
        let served = sched.forecast(Arc::clone(&entry), window).expect("forecast succeeds");
        assert_eq!(served.len(), HORIZON);
        for (s, d) in served.iter().zip(direct.iter()) {
            assert_eq!(s.to_bits(), d.to_bits(), "served row must be bit-identical");
        }
        assert_eq!(sched.stats().batches.load(Ordering::Relaxed), 1);
        assert_eq!(sched.stats().batched_jobs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_same_model_requests_coalesce() {
        let entry = fitted_entry(1);
        // A long batching window guarantees all threads land in one batch.
        let sched = Arc::new(Scheduler::start(SchedulerConfig {
            batch_wait: Duration::from_millis(200),
            ..Default::default()
        }));
        let clients = 6;
        let mut handles = Vec::new();
        for c in 0..clients {
            let sched = Arc::clone(&sched);
            let entry = Arc::clone(&entry);
            handles.push(std::thread::spawn(move || {
                let window: Vec<f64> =
                    (0..INPUT_LEN).map(|i| ((i + c) as f64 * 0.25).sin()).collect();
                let served = sched.forecast(Arc::clone(&entry), window.clone()).unwrap();
                let direct = entry.model.lock().predict(&[window]).expect("direct predict");
                for (s, d) in served.iter().zip(direct.iter()) {
                    assert_eq!(s.to_bits(), d.to_bits());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let batches = sched.stats().batches.load(Ordering::Relaxed);
        let jobs = sched.stats().batched_jobs.load(Ordering::Relaxed);
        assert_eq!(jobs, clients as u64);
        assert!(
            batches < clients as u64,
            "6 concurrent requests must coalesce into fewer than 6 batches (got {batches})"
        );
    }

    #[test]
    fn admission_control_bounds_inflight_jobs() {
        let entry = fitted_entry(1);
        let sched = Scheduler::start(SchedulerConfig { queue_depth: 1, ..Default::default() });
        // Occupy the single slot through the real admission mechanism —
        // the guard a concurrent in-flight forecast would hold.
        let slot = AdmissionGuard::try_acquire(&sched.inflight, 1).expect("first slot is free");
        match sched.forecast(Arc::clone(&entry), vec![0.0; INPUT_LEN]) {
            Err(ServeError::Overloaded { depth }) => assert_eq!(depth, 1),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(sched.stats().rejected.load(Ordering::Relaxed), 1);
        // Releasing the guard frees the slot for the next submission.
        drop(slot);
        let served = sched.forecast(entry, vec![0.0; INPUT_LEN]).unwrap();
        assert_eq!(served.len(), HORIZON);
    }

    #[test]
    fn wrong_length_window_is_a_typed_error_not_a_worker_panic() {
        // A short window used to survive until tensor staging in a batch
        // worker, where `copy_from_slice` panicked and killed the worker.
        // It must be rejected up front with a typed error.
        let entry = fitted_entry(1);
        let sched = Scheduler::start(SchedulerConfig::default());
        match sched.forecast(Arc::clone(&entry), vec![0.0; INPUT_LEN - 1]) {
            Err(ServeError::Model(msg)) => assert!(msg.contains("input_len"), "{msg}"),
            other => panic!("expected Model error, got {other:?}"),
        }
        let served = sched.forecast(entry, vec![0.0; INPUT_LEN]).unwrap();
        assert_eq!(served.len(), HORIZON);
    }

    /// A model whose predict path panics — stands in for any model bug
    /// that unwinds inside `predict_batch`.
    struct PanickyModel;

    impl forecast::model::Forecaster for PanickyModel {
        fn name(&self) -> &'static str {
            "Panicky"
        }
        fn input_len(&self) -> usize {
            INPUT_LEN
        }
        fn horizon(&self) -> usize {
            HORIZON
        }
        fn fit(
            &mut self,
            _train: &tsdata::series::MultiSeries,
            _val: &tsdata::series::MultiSeries,
        ) -> Result<(), forecast::ForecastError> {
            Ok(())
        }
        fn predict(&self, _inputs: &[Vec<f64>]) -> Result<Vec<f64>, forecast::ForecastError> {
            panic!("injected model bug");
        }
    }

    fn panicky_entry(id: u64) -> Arc<ModelEntry> {
        let good = fitted_entry(id);
        Arc::new(ModelEntry {
            spec: good.spec.clone(),
            key: good.key.clone(),
            model: parking_lot::Mutex::new(Box::new(PanickyModel)),
            input_len: INPUT_LEN,
            horizon: HORIZON,
            bytes: 64,
            id,
        })
    }

    #[test]
    fn panicking_model_errors_jobs_without_leaking_slots_or_workers() {
        // Regression for the admission-counter leak: with the old manual
        // increment/decrement pairs, a panicking predict killed the batch
        // worker, the reply channel died, and the guard-free error path
        // meant repeated failures pinned `inflight` above the bound. The
        // panic must now come back as a Model error, release its slot,
        // and leave the worker pool alive.
        let entry = panicky_entry(9);
        let sched = Scheduler::start(SchedulerConfig { queue_depth: 2, ..Default::default() });
        for _ in 0..5 {
            match sched.forecast(Arc::clone(&entry), vec![0.0; INPUT_LEN]) {
                Err(ServeError::Model(msg)) => assert!(msg.contains("panicked"), "{msg}"),
                other => panic!("expected Model error, got {other:?}"),
            }
        }
        assert_eq!(sched.inflight.load(Ordering::SeqCst), 0, "no admission slot leaked");
        // More failures than workers existed, yet a healthy model still
        // serves: no worker thread died to the panics.
        let served = sched.forecast(fitted_entry(1), vec![0.0; INPUT_LEN]).unwrap();
        assert_eq!(served.len(), HORIZON);
    }
}
