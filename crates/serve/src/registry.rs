//! The warm model registry.
//!
//! On startup the registry scans an [`ArtifactStore`] directory's
//! manifest ([`ArtifactStore::list_keys`]) and builds a routing table
//! from [`ModelSpec`] — the serving-relevant slice of an
//! [`ArtifactKey`]: `(dataset, model, method, eps)` — to the full key on
//! disk. Models fault in lazily on first request (load the state dict,
//! rebuild the forecaster, restore the weights bit-exactly) and stay
//! warm in memory; when the configured byte budget fills, the
//! least-recently-used entry is evicted and will fault back in on its
//! next request.
//!
//! Entries are shared as `Arc<ModelEntry>` so eviction never invalidates
//! an in-flight batch: the scheduler holds its own reference and the
//! model memory is released when the last batch drains.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evalcore::artifact::{ArtifactKey, ArtifactStore};
use forecast::{build_model, BuildOptions, Forecaster, Profile, ALL_MODELS};
use parking_lot::Mutex;
use telemetry::counter_add;
use tsdata::datasets::ALL_DATASETS;

use crate::ServeError;

/// The serving-facing identity of a model: which dataset it was fitted
/// on, which architecture, and which lossy transform (if any) its
/// training data went through. Seed, profile and window geometry are
/// resolved by the registry from the artifact manifest — clients ask for
/// "DLinear on ETTm1 trained under SWING ε=0.05", not for a seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelSpec {
    /// Dataset name (e.g. `ETTm1`).
    pub dataset: String,
    /// Model name in the paper's spelling (e.g. `DLinear`, `GRU`).
    pub model: String,
    /// Lossy training transform (`None` = trained on raw data).
    pub method: Option<String>,
    /// Error bound of the transform as its exact `f64` bit pattern.
    pub eps_bits: Option<u64>,
}

impl ModelSpec {
    /// The spec an artifact key serves under.
    pub fn from_key(key: &ArtifactKey) -> ModelSpec {
        ModelSpec {
            dataset: key.dataset.clone(),
            model: key.model.clone(),
            method: key.method.clone(),
            eps_bits: key.eps_bits,
        }
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.dataset, self.model)?;
        match (&self.method, self.eps_bits) {
            (Some(m), Some(bits)) => write!(f, "/{}@{}", m, f64::from_bits(bits)),
            _ => write!(f, "/raw"),
        }
    }
}

/// Registry sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Byte budget for resident model state. When an insert pushes the
    /// total over this bound, least-recently-used entries are evicted
    /// (the newest entry itself is never evicted, so a single oversized
    /// model still serves).
    pub budget_bytes: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        // Generous for this workspace's Fast-profile models (a few
        // hundred KiB each): roughly the whole grid stays warm.
        RegistryConfig { budget_bytes: 256 << 20 }
    }
}

/// One warm model. The forecaster sits behind a mutex because
/// [`Forecaster::predict_batch`] takes `&mut self` on some families
/// (internal scratch); the scheduler serialises batches per entry anyway.
pub struct ModelEntry {
    /// The spec this entry serves.
    pub spec: ModelSpec,
    /// The full artifact key the weights came from.
    pub key: ArtifactKey,
    /// The restored forecaster.
    pub model: Mutex<Box<dyn Forecaster>>,
    /// Input window length `k`.
    pub input_len: usize,
    /// Forecast horizon `h`.
    pub horizon: usize,
    /// Estimated resident bytes (state-dict scalars + overhead).
    pub bytes: usize,
    /// Registry-unique id; the scheduler coalesces batches by this.
    pub id: u64,
}

struct Resident {
    entry: Arc<ModelEntry>,
    /// LRU clock value of the last `get`.
    last_used: u64,
}

struct RegistryState {
    resident: HashMap<ModelSpec, Resident>,
    resident_bytes: usize,
    clock: u64,
}

/// The warm model registry. See the module docs.
pub struct ModelRegistry {
    store: Option<ArtifactStore>,
    manifest: HashMap<ModelSpec, ArtifactKey>,
    config: RegistryConfig,
    state: Mutex<RegistryState>,
    next_id: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ModelRegistry {
    /// Opens an artifact directory and indexes its manifest. Duplicate
    /// specs (several seeds of the same configuration) resolve to the
    /// lowest seed, deterministically.
    pub fn open(
        dir: impl Into<std::path::PathBuf>,
        config: RegistryConfig,
    ) -> Result<ModelRegistry, ServeError> {
        let store = ArtifactStore::open(dir).map_err(|e| ServeError::Model(e.to_string()))?;
        let mut manifest: HashMap<ModelSpec, ArtifactKey> = HashMap::new();
        for key in store.list_keys().map_err(|e| ServeError::Model(e.to_string()))? {
            let spec = ModelSpec::from_key(&key);
            match manifest.get(&spec) {
                Some(existing) if existing.seed <= key.seed => {}
                _ => {
                    manifest.insert(spec, key);
                }
            }
        }
        Ok(ModelRegistry {
            store: Some(store),
            manifest,
            config,
            state: Mutex::new(RegistryState {
                resident: HashMap::new(),
                resident_bytes: 0,
                clock: 0,
            }),
            next_id: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// A registry with no backing store — entries arrive only through
    /// [`ModelRegistry::insert_direct`]. For tests and in-process setups.
    pub fn empty(config: RegistryConfig) -> ModelRegistry {
        ModelRegistry {
            store: None,
            manifest: HashMap::new(),
            config,
            state: Mutex::new(RegistryState {
                resident: HashMap::new(),
                resident_bytes: 0,
                clock: 0,
            }),
            next_id: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Specs the registry can serve, sorted for stable display.
    pub fn specs(&self) -> Vec<ModelSpec> {
        let state = self.state.lock();
        let mut specs: Vec<ModelSpec> = self
            .manifest
            .keys()
            .chain(state.resident.keys())
            .cloned()
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        specs.sort_by_key(|s| s.to_string());
        specs
    }

    /// Number of currently-warm models.
    pub fn resident_count(&self) -> usize {
        self.state.lock().resident.len()
    }

    /// Estimated bytes held by warm models.
    pub fn resident_bytes(&self) -> usize {
        self.state.lock().resident_bytes
    }

    /// `(hits, misses, evictions)` counters since startup.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    /// Eagerly faults in up to `limit` manifest entries (startup warm-up,
    /// so the first requests don't pay fault-in latency). Returns how
    /// many models are warm afterwards.
    pub fn warm(&self, limit: usize) -> Result<usize, ServeError> {
        let mut specs: Vec<ModelSpec> = self.manifest.keys().cloned().collect();
        specs.sort_by_key(|s| s.to_string());
        for spec in specs.into_iter().take(limit) {
            self.get(&spec)?;
        }
        Ok(self.resident_count())
    }

    /// Resolves a spec to a warm entry, faulting it in from the artifact
    /// store if cold and evicting LRU entries if the byte budget fills.
    pub fn get(&self, spec: &ModelSpec) -> Result<Arc<ModelEntry>, ServeError> {
        {
            let mut state = self.state.lock();
            state.clock += 1;
            let clock = state.clock;
            if let Some(res) = state.resident.get_mut(spec) {
                res.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                counter_add("serve_registry_hits_total", &[], 1);
                return Ok(Arc::clone(&res.entry));
            }
        }
        // Cold: fault in outside the state lock (loading + rebuilding a
        // model can take milliseconds; other specs keep serving).
        self.misses.fetch_add(1, Ordering::Relaxed);
        counter_add("serve_registry_misses_total", &[], 1);
        let key =
            self.manifest.get(spec).ok_or_else(|| ServeError::UnknownModel(spec.to_string()))?;
        let entry = self.fault_in(spec, key)?;
        self.install(entry.clone());
        Ok(entry)
    }

    fn fault_in(&self, spec: &ModelSpec, key: &ArtifactKey) -> Result<Arc<ModelEntry>, ServeError> {
        let store =
            self.store.as_ref().ok_or_else(|| ServeError::UnknownModel(spec.to_string()))?;
        let state_dict =
            store.load(key).map_err(|e| ServeError::Model(e.to_string()))?.ok_or_else(|| {
                ServeError::Model(format!("artifact for {spec} vanished from the store"))
            })?;
        let kind = ALL_MODELS
            .iter()
            .copied()
            .find(|k| k.name() == key.model)
            .ok_or_else(|| ServeError::Model(format!("unknown model kind {:?}", key.model)))?;
        let season = ALL_DATASETS
            .iter()
            .find(|d| d.name() == key.dataset)
            .map(|d| d.samples_per_day() as usize)
            .filter(|&s| s >= 2);
        let profile = if key.profile == "Paper" { Profile::Paper } else { Profile::Fast };
        let mut model = build_model(
            kind,
            BuildOptions {
                input_len: key.input_len,
                horizon: key.horizon,
                season,
                seed: key.seed,
                profile,
            },
        );
        model
            .load_state(&state_dict)
            .map_err(|e| ServeError::Model(format!("restoring {spec}: {e}")))?;
        let bytes: usize =
            state_dict.entries().map(|(name, t)| name.len() + t.data().len() * 8 + 64).sum();
        Ok(Arc::new(ModelEntry {
            spec: spec.clone(),
            key: key.clone(),
            input_len: key.input_len,
            horizon: key.horizon,
            model: Mutex::new(model),
            bytes,
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
        }))
    }

    /// Installs a pre-built entry (test hook and in-process serving; also
    /// the tail of a cold-path fault-in). Evicts LRU entries until the
    /// budget holds, never evicting the entry just installed.
    pub fn insert_direct(&self, entry: Arc<ModelEntry>) {
        self.install(entry);
    }

    fn install(&self, entry: Arc<ModelEntry>) {
        let mut state = self.state.lock();
        state.clock += 1;
        let clock = state.clock;
        let spec = entry.spec.clone();
        let bytes = entry.bytes;
        if let Some(old) = state.resident.insert(spec, Resident { entry, last_used: clock }) {
            state.resident_bytes -= old.entry.bytes;
        }
        state.resident_bytes += bytes;
        while state.resident_bytes > self.config.budget_bytes && state.resident.len() > 1 {
            let victim = state
                .resident
                .iter()
                .filter(|(_, r)| r.last_used != clock)
                .min_by_key(|(_, r)| r.last_used)
                .map(|(s, _)| s.clone());
            match victim {
                Some(spec) => {
                    let gone = state.resident.remove(&spec).expect("victim is resident");
                    state.resident_bytes -= gone.entry.bytes;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    counter_add("serve_registry_evictions_total", &[], 1);
                }
                None => break,
            }
        }
    }
}
