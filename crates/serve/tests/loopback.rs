//! End-to-end loopback tests for the serving stack: the bit-identity
//! contract over real TCP for every model family, request coalescing +
//! admission control under a gated model, registry LRU eviction, and
//! protocol robustness against malformed frames.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use evalcore::artifact::{ArtifactKey, ArtifactStore};
use forecast::model::{ForecastError, Forecaster, ModelKind, ALL_MODELS};
use forecast::{build_model, BuildOptions, Profile, StateDict};
use serve::registry::{ModelEntry, ModelSpec, RegistryConfig};
use serve::wire;
use serve::{Client, ModelRegistry, SchedulerConfig, ServeConfig, ServeError, Server};
use tsdata::datasets::{generate, DatasetKind, GenOptions, ALL_DATASETS};
use tsdata::split::{split, SplitSpec};

const INPUT_LEN: usize = 16;
const HORIZON: usize = 4;
const DATA_SEED: u64 = 7;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "serve-loopback-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The season the registry will derive for ETTm1 — offline models must
/// be built with the same value or the restored config would differ.
fn ettm1_season() -> Option<usize> {
    ALL_DATASETS
        .iter()
        .find(|d| d.name() == "ETTm1")
        .map(|d| d.samples_per_day() as usize)
        .filter(|&s| s >= 2)
}

fn tiny_split() -> tsdata::split::Split {
    let data = generate(
        DatasetKind::ETTm1,
        GenOptions { len: Some(360), channels: Some(1), seed: DATA_SEED },
    );
    split(&data, SplitSpec::default()).expect("360 points split cleanly")
}

fn fit_and_save(store: &ArtifactStore, kind: ModelKind) -> Box<dyn Forecaster> {
    let s = tiny_split();
    let mut model = build_model(
        kind,
        BuildOptions {
            input_len: INPUT_LEN,
            horizon: HORIZON,
            season: ettm1_season(),
            seed: 40,
            profile: Profile::Fast,
        },
    );
    model.fit(&s.train, &s.val).expect("tiny fit succeeds");
    let key = ArtifactKey {
        dataset: "ETTm1".into(),
        model: kind.name().into(),
        seed: 40,
        profile: "Fast".into(),
        method: None,
        eps_bits: None,
        input_len: INPUT_LEN,
        horizon: HORIZON,
        len: Some(360),
        channels: Some(1),
        data_seed: DATA_SEED,
    };
    store.save(&key, &model.save_state().expect("state export")).expect("artifact save");
    model
}

/// The full served path — artifact store, registry fault-in, TCP, store
/// windowing, batching scheduler — must reproduce offline `predict`
/// bit-for-bit for every model family.
#[test]
fn served_forecasts_are_bit_identical_for_every_model_family() {
    // The serve binary enables telemetry at startup; in-process tests
    // must opt in too or the Prometheus dump comes back empty.
    telemetry::set_enabled(true);
    let dir = temp_dir("identity");
    let store = ArtifactStore::open(&dir).expect("open artifact store");
    let offline: Vec<(ModelKind, Box<dyn Forecaster>)> =
        ALL_MODELS.iter().map(|&k| (k, fit_and_save(&store, k))).collect();

    let registry = ModelRegistry::open(&dir, RegistryConfig::default()).expect("open registry");
    assert_eq!(registry.specs().len(), ALL_MODELS.len(), "one spec per model family");
    let mut server =
        Server::start(ServeConfig::default(), Arc::new(registry)).expect("server starts");
    let addr = server.local_addr();

    let s = tiny_split();
    let test_vals = s.test.target().values();
    let mut client = Client::connect(addr).expect("client connects");
    let points: Vec<(i64, f64)> =
        test_vals.iter().enumerate().map(|(i, &v)| (i as i64 * 60, v)).collect();
    let total = client.ingest(1, 0, 0.0, &points).expect("ingest succeeds");
    assert_eq!(total, points.len() as u64);

    let window = test_vals[test_vals.len() - INPUT_LEN..].to_vec();
    for (kind, model) in &offline {
        let spec = ModelSpec {
            dataset: "ETTm1".into(),
            model: kind.name().into(),
            method: None,
            eps_bits: None,
        };
        let served = client.forecast(&spec, 1).expect("served forecast succeeds");
        let direct =
            model.predict(std::slice::from_ref(&window)).expect("offline predict succeeds");
        assert_eq!(served.len(), HORIZON);
        let served_bits: Vec<u64> = served.iter().map(|v| v.to_bits()).collect();
        let direct_bits: Vec<u64> = direct.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            served_bits,
            direct_bits,
            "{}: served forecast diverged from offline predict",
            kind.name()
        );
    }

    // Compress rides the same stored series through a paper codec.
    let (pts, segments, payload) = client.compress(2, 0.05, 1).expect("compress succeeds");
    assert_eq!(pts, points.len() as u64);
    assert!(segments >= 1);
    assert!(!payload.is_empty());

    // Stats reflect the traffic; the Prometheus dump carries the serve counters.
    let stats = client.stats().expect("stats succeeds");
    assert!(
        stats.contains(&format!("forecast_requests={}", ALL_MODELS.len())),
        "stats must count {} forecasts:\n{stats}",
        ALL_MODELS.len()
    );
    let metrics = client.metrics().expect("metrics succeeds");
    assert!(
        metrics.contains("serve_requests_total"),
        "prometheus dump must contain serve_requests_total:\n{metrics}"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A forecaster whose `predict` blocks until the test releases a gate —
/// lets the test hold worker threads mid-batch to observe coalescing and
/// admission control deterministically.
type Gate = Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>;

struct GateModel {
    gate: Gate,
}

impl GateModel {
    fn release(gate: &Gate) {
        let (lock, cv) = &**gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
}

impl Forecaster for GateModel {
    fn name(&self) -> &'static str {
        "Gate"
    }
    fn input_len(&self) -> usize {
        INPUT_LEN
    }
    fn horizon(&self) -> usize {
        HORIZON
    }
    fn fit(
        &mut self,
        _train: &tsdata::series::MultiSeries,
        _val: &tsdata::series::MultiSeries,
    ) -> Result<(), ForecastError> {
        Ok(())
    }
    fn predict(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>, ForecastError> {
        let (lock, cv) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cv.wait(open).unwrap();
        }
        Ok((0..HORIZON).map(|i| inputs[0][0] + i as f64).collect())
    }
    fn save_state(&self) -> Result<StateDict, ForecastError> {
        Ok(StateDict::new())
    }
}

fn gate_entry(id: u64) -> (Arc<ModelEntry>, Gate) {
    let gate: Gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let spec =
        ModelSpec { dataset: "ETTm1".into(), model: "Gate".into(), method: None, eps_bits: None };
    let key = ArtifactKey {
        dataset: "ETTm1".into(),
        model: "Gate".into(),
        seed: 0,
        profile: "Fast".into(),
        method: None,
        eps_bits: None,
        input_len: INPUT_LEN,
        horizon: HORIZON,
        len: None,
        channels: None,
        data_seed: 0,
    };
    let entry = Arc::new(ModelEntry {
        spec,
        key,
        model: parking_lot::Mutex::new(
            Box::new(GateModel { gate: Arc::clone(&gate) }) as Box<dyn Forecaster>
        ),
        input_len: INPUT_LEN,
        horizon: HORIZON,
        bytes: 64,
        id,
    });
    (entry, gate)
}

/// With a gated model holding the single worker, concurrent requests
/// coalesce into one batch, the queue bound rejects the overflow request
/// with the typed Overloaded response, and everything admitted completes
/// after release.
#[test]
fn requests_coalesce_and_overflow_is_rejected_typed() {
    let registry = Arc::new(ModelRegistry::empty(RegistryConfig::default()));
    let (entry, gate) = gate_entry(1);
    registry.insert_direct(Arc::clone(&entry));

    let depth = 4;
    let config = ServeConfig {
        scheduler: SchedulerConfig {
            queue_depth: depth,
            max_batch: 64,
            batch_wait: Duration::from_millis(500),
            workers: 1,
        },
        ..Default::default()
    };
    let mut server = Server::start(config, Arc::clone(&registry)).expect("server starts");
    let addr = server.local_addr();

    // Stage a series long enough to window.
    let mut seed_client = Client::connect(addr).expect("connect");
    let points: Vec<(i64, f64)> = (0..32).map(|i| (i as i64 * 60, i as f64)).collect();
    seed_client.ingest(1, 0, 0.0, &points).expect("ingest");

    let spec =
        ModelSpec { dataset: "ETTm1".into(), model: "Gate".into(), method: None, eps_bits: None };

    // Fill every admission slot with requests that block on the gate.
    let mut handles = Vec::new();
    for _ in 0..depth {
        let spec = spec.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            c.forecast(&spec, 1)
        }));
    }
    // Give the admitted requests time to land in the scheduler.
    std::thread::sleep(Duration::from_millis(150));

    // The depth+1'th request must bounce with the typed overload error.
    let mut overflow = Client::connect(addr).expect("connect");
    match overflow.forecast(&spec, 1) {
        Err(ServeError::Overloaded { depth: d }) => assert_eq!(d, depth),
        other => panic!("expected Overloaded, got {other:?}"),
    }

    GateModel::release(&gate);
    let expected: Vec<f64> = (0..HORIZON).map(|i| 16.0 + i as f64).collect();
    for h in handles {
        let values = h.join().unwrap().expect("admitted forecast completes");
        assert_eq!(values, expected);
    }

    // All four admitted jobs travelled in a single coalesced batch.
    let stats = seed_client.stats().expect("stats");
    assert!(
        stats.contains("batches=1\n"),
        "4 concurrent gated requests must coalesce into one batch:\n{stats}"
    );
    assert!(stats.contains(&format!("batched_jobs={depth}\n")), "stats:\n{stats}");
    assert!(stats.contains("overloaded=1\n"), "stats:\n{stats}");
    server.stop();
}

/// Registry eviction: a byte budget sized for two models evicts the
/// least-recently-used entry on the third insert, and the evicted spec
/// faults back in from the artifact store on its next request.
#[test]
fn registry_evicts_lru_and_faults_back_in() {
    let dir = temp_dir("lru");
    let store = ArtifactStore::open(&dir).expect("open artifact store");
    let s = tiny_split();
    let mut bytes_per_model = 0usize;
    for dataset in ["ETTm1", "ETTm2", "Solar"] {
        let mut model = build_model(
            ModelKind::DLinear,
            BuildOptions {
                input_len: INPUT_LEN,
                horizon: HORIZON,
                season: None,
                seed: 40,
                profile: Profile::Fast,
            },
        );
        model.fit(&s.train, &s.val).expect("tiny fit");
        let state = model.save_state().expect("state export");
        bytes_per_model = state.entries().map(|(n, t)| n.len() + t.data().len() * 8 + 64).sum();
        let key = ArtifactKey {
            dataset: dataset.into(),
            model: "DLinear".into(),
            seed: 40,
            profile: "Fast".into(),
            method: None,
            eps_bits: None,
            input_len: INPUT_LEN,
            horizon: HORIZON,
            len: Some(360),
            channels: Some(1),
            data_seed: DATA_SEED,
        };
        store.save(&key, &state).expect("artifact save");
    }

    // Budget for ~2.2 models: the third fault-in must evict the LRU.
    let budget = bytes_per_model * 2 + bytes_per_model / 5;
    let registry =
        ModelRegistry::open(&dir, RegistryConfig { budget_bytes: budget }).expect("open");
    let spec = |dataset: &str| ModelSpec {
        dataset: dataset.into(),
        model: "DLinear".into(),
        method: None,
        eps_bits: None,
    };
    registry.get(&spec("ETTm1")).expect("fault in ETTm1");
    registry.get(&spec("ETTm2")).expect("fault in ETTm2");
    assert_eq!(registry.resident_count(), 2);
    // Touch ETTm1 so ETTm2 is the LRU, then overflow the budget.
    registry.get(&spec("ETTm1")).expect("warm hit");
    registry.get(&spec("Solar")).expect("fault in Solar");
    assert_eq!(registry.resident_count(), 2, "third insert must evict the LRU");
    let (_, _, evictions) = registry.stats();
    assert_eq!(evictions, 1);

    // The evicted spec still serves: it faults back in from disk.
    let entry = registry.get(&spec("ETTm2")).expect("evicted spec faults back in");
    assert_eq!(entry.spec.dataset, "ETTm2");
    let (_, misses, _) = registry.stats();
    assert_eq!(misses, 4, "ETTm1, ETTm2, Solar, and the re-fault of ETTm2");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Protocol robustness: a malformed payload gets a typed error response
/// (connection stays up), an oversized length prefix drops the
/// connection without allocating, and an unknown model or series is a
/// clean error.
#[test]
fn malformed_and_unknown_requests_fail_cleanly() {
    let registry = Arc::new(ModelRegistry::empty(RegistryConfig::default()));
    let mut server = Server::start(ServeConfig::default(), registry).expect("server starts");
    let addr = server.local_addr();

    // Garbage opcode: served a STATUS_ERROR, connection survives.
    let mut raw = TcpStream::connect(addr).expect("connect");
    wire::write_frame(&mut raw, &[0xEE, 1, 2, 3]).expect("write");
    let resp = wire::read_frame(&mut raw).expect("read").expect("response frame");
    match wire::decode_response(&resp).expect("decodes") {
        wire::Response::Error { message } => assert!(message.contains("opcode")),
        other => panic!("expected Error, got {other:?}"),
    }
    // Same connection still serves a well-formed request.
    wire::write_frame(&mut raw, &wire::encode_request(&wire::Request::Stats)).expect("write");
    let resp = wire::read_frame(&mut raw).expect("read").expect("response frame");
    assert!(matches!(wire::decode_response(&resp).expect("decodes"), wire::Response::Text { .. }));

    // Hostile length prefix: the server closes the connection.
    let mut evil = TcpStream::connect(addr).expect("connect");
    use std::io::{Read, Write};
    evil.write_all(&u32::MAX.to_le_bytes()).expect("write");
    let mut buf = [0u8; 1];
    assert_eq!(evil.read(&mut buf).expect("read"), 0, "connection must be closed");

    // Unknown model / unknown series are typed errors, not hangs.
    let mut client = Client::connect(addr).expect("connect");
    let spec = ModelSpec {
        dataset: "Nowhere".into(),
        model: "DLinear".into(),
        method: None,
        eps_bits: None,
    };
    match client.forecast(&spec, 99) {
        Err(ServeError::Model(msg)) => assert!(msg.contains("unknown model")),
        other => panic!("expected model error, got {other:?}"),
    }
    server.stop();
}
