//! Unit-root test statistics: KPSS (`unitroot_kpss`) and Phillips–Perron
//! (`unitroot_pp`), two of the SHAP-important stationarity characteristics
//! (§4.3.1).

use tsdata::stats::mean;

fn bartlett_long_run_variance(e: &[f64], lags: usize) -> f64 {
    let n = e.len() as f64;
    let gamma = |j: usize| -> f64 { e.iter().skip(j).zip(e).map(|(a, b)| a * b).sum::<f64>() / n };
    let mut lrv = gamma(0);
    for j in 1..=lags.min(e.len().saturating_sub(1)) {
        let w = 1.0 - j as f64 / (lags + 1) as f64;
        lrv += 2.0 * w * gamma(j);
    }
    lrv.max(1e-12)
}

fn default_lags(n: usize) -> usize {
    (4.0 * (n as f64 / 100.0).powf(0.25)).trunc() as usize
}

/// KPSS level-stationarity statistic. Small values (≲ 0.46) are consistent
/// with stationarity; large values reject it.
pub fn kpss(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 8 {
        return 0.0;
    }
    let m = mean(x);
    let e: Vec<f64> = x.iter().map(|v| v - m).collect();
    let mut s = 0.0;
    let sum_s2: f64 = e
        .iter()
        .map(|&v| {
            s += v;
            s * s
        })
        .sum();
    let lrv = bartlett_long_run_variance(&e, default_lags(n));
    sum_s2 / (n as f64 * n as f64 * lrv)
}

/// Phillips–Perron `Z_alpha` statistic (constant-only regression). Large
/// negative values reject a unit root (stationary); values near zero are
/// consistent with a unit root.
pub fn phillips_perron(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 8 {
        return 0.0;
    }
    // OLS: x_t = mu + rho * x_{t-1} + e_t.
    let y = &x[1..];
    let ylag = &x[..n - 1];
    let m = n - 1;
    let mean_lag = mean(ylag);
    let mean_y = mean(y);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for t in 0..m {
        let dx = ylag[t] - mean_lag;
        sxx += dx * dx;
        sxy += dx * (y[t] - mean_y);
    }
    if sxx < 1e-12 {
        return 0.0;
    }
    let rho = sxy / sxx;
    let mu = mean_y - rho * mean_lag;
    let e: Vec<f64> = (0..m).map(|t| y[t] - mu - rho * ylag[t]).collect();
    let gamma0: f64 = e.iter().map(|v| v * v).sum::<f64>() / m as f64;
    let lambda2 = bartlett_long_run_variance(&e, default_lags(m));
    // Z_alpha = m(rho - 1) - (lambda² - gamma0) / (2 * sxx / m²)
    m as f64 * (rho - 1.0) - (lambda2 - gamma0) / (2.0 * sxx / (m as f64 * m as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    fn random_walk(n: usize, seed: u64) -> Vec<f64> {
        let mut cum = 0.0;
        noise(n, seed)
            .into_iter()
            .map(|v| {
                cum += v;
                cum
            })
            .collect()
    }

    #[test]
    fn kpss_small_for_stationary() {
        let stat = kpss(&noise(2000, 1));
        assert!(stat < 0.5, "stationary KPSS {stat}");
    }

    #[test]
    fn kpss_large_for_random_walk() {
        let stat = kpss(&random_walk(2000, 2));
        assert!(stat > 1.0, "random walk KPSS {stat}");
    }

    #[test]
    fn pp_rejects_unit_root_for_noise() {
        let stat = phillips_perron(&noise(2000, 3));
        assert!(stat < -100.0, "noise PP {stat} should be very negative");
    }

    #[test]
    fn pp_near_zero_for_random_walk() {
        let stat = phillips_perron(&random_walk(2000, 4));
        assert!(stat > -30.0, "random walk PP {stat} should be near zero");
    }

    #[test]
    fn ordering_is_consistent() {
        // KPSS and PP must order a stationary and an integrated series
        // oppositely (that's their point).
        let stationary = noise(1500, 5);
        let integrated = random_walk(1500, 5);
        assert!(kpss(&stationary) < kpss(&integrated));
        assert!(phillips_perron(&stationary) < phillips_perron(&integrated));
    }

    #[test]
    fn degenerate_inputs_safe() {
        assert_eq!(kpss(&[1.0, 2.0]), 0.0);
        assert_eq!(phillips_perron(&[1.0; 5]), 0.0);
        assert_eq!(phillips_perron(&[3.0; 100]), 0.0); // constant: sxx = 0
    }
}
