//! Holt's linear exponential smoothing, fitted by grid search over the
//! smoothing parameters. Provides the `alpha` (level) and `beta` (trend)
//! characteristics of tsfeatures' `holt_parameters`; `beta` appears among
//! the paper's top Spearman correlates of TFE (Table 4).

/// Fitted Holt smoothing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoltParams {
    /// Level smoothing parameter.
    pub alpha: f64,
    /// Trend smoothing parameter.
    pub beta: f64,
    /// One-step-ahead SSE at the optimum.
    pub sse: f64,
}

/// One-step-ahead SSE of Holt's linear method for given parameters.
pub fn holt_sse(x: &[f64], alpha: f64, beta: f64) -> f64 {
    if x.len() < 3 {
        return 0.0;
    }
    let mut level = x[1];
    let mut trend = x[1] - x[0];
    let mut sse = 0.0;
    for &y in &x[2..] {
        let forecast = level + trend;
        let err = y - forecast;
        sse += err * err;
        let new_level = alpha * y + (1.0 - alpha) * (level + trend);
        trend = beta * (new_level - level) + (1.0 - beta) * trend;
        level = new_level;
    }
    sse
}

/// Fits `(alpha, beta)` by coarse-to-fine grid search minimizing one-step
/// SSE. Long series are tail-capped for speed (the parameters are
/// scale-free).
pub fn holt_parameters(x: &[f64]) -> HoltParams {
    const CAP: usize = 2000;
    let x = &x[x.len().saturating_sub(CAP)..];
    if x.len() < 3 {
        return HoltParams { alpha: 0.5, beta: 0.1, sse: 0.0 };
    }
    let mut best = HoltParams { alpha: 0.5, beta: 0.1, sse: f64::INFINITY };
    // Coarse pass.
    let grid: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    for &a in &grid {
        for &b in &grid {
            let sse = holt_sse(x, a, b);
            if sse < best.sse {
                best = HoltParams { alpha: a, beta: b, sse };
            }
        }
    }
    // Fine pass around the coarse optimum.
    let refine: Vec<f64> = (-4..=4).map(|i| i as f64 * 0.0125).collect();
    let (ca, cb) = (best.alpha, best.beta);
    for &da in &refine {
        for &db in &refine {
            let a = (ca + da).clamp(0.001, 0.999);
            let b = (cb + db).clamp(0.001, 0.999);
            let sse = holt_sse(x, a, b);
            if sse < best.sse {
                best = HoltParams { alpha: a, beta: b, sse };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64, scale: f64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * scale
            })
            .collect()
    }

    #[test]
    fn smooth_trend_gets_high_alpha_low_sse() {
        // Nearly deterministic ramp: following the data closely is optimal.
        let x: Vec<f64> = (0..300).map(|i| i as f64 * 0.5).collect();
        let p = holt_parameters(&x);
        assert!(p.sse < 1e-6, "ramp sse {}", p.sse);
    }

    #[test]
    fn noisy_level_gets_low_alpha() {
        // Constant + heavy noise: averaging (small alpha) wins.
        let x: Vec<f64> = noise(800, 7, 4.0).iter().map(|v| 10.0 + v).collect();
        let p = holt_parameters(&x);
        assert!(p.alpha < 0.4, "alpha {}", p.alpha);
        assert!(p.beta < 0.3, "beta {}", p.beta);
    }

    #[test]
    fn trending_series_gets_higher_beta_than_flat() {
        let mut trendy: Vec<f64> = Vec::new();
        let mut slope = 0.1;
        let mut level = 0.0;
        for (i, n) in noise(600, 9, 0.05).into_iter().enumerate() {
            if i % 150 == 0 {
                slope = -slope; // trend changes direction -> beta must adapt
            }
            level += slope;
            trendy.push(level + n);
        }
        let flat: Vec<f64> = noise(600, 10, 0.05).iter().map(|v| 5.0 + v).collect();
        let pt = holt_parameters(&trendy);
        let pf = holt_parameters(&flat);
        assert!(pt.beta > pf.beta, "trendy beta {} vs flat beta {}", pt.beta, pf.beta);
    }

    #[test]
    fn sse_monotone_sanity() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let p = holt_parameters(&x);
        // Optimum is no worse than arbitrary parameter picks.
        assert!(p.sse <= holt_sse(&x, 0.2, 0.2) + 1e-12);
        assert!(p.sse <= holt_sse(&x, 0.9, 0.05) + 1e-12);
    }

    #[test]
    fn short_input_defaults() {
        let p = holt_parameters(&[1.0, 2.0]);
        assert_eq!(p.alpha, 0.5);
    }
}
