//! The 42 time-series characteristics (§4.3.1: "we analyze 42
//! characteristics extracted using the R ts-feature package").
//!
//! Each characteristic is computed identically on the original and the
//! decompressed series; the paper's analyses use the per-characteristic
//! difference (SHAP/GBoost) and relative difference (Table 6).

use tsdata::stats::{mean, std_dev, variance};

use crate::acf;
use crate::decomp::{decompose, stl_features};
use crate::holt::holt_parameters;
use crate::rolling;
use crate::spectral::spectral_entropy;
use crate::unitroot;

/// Number of characteristics.
pub const NUM_FEATURES: usize = 42;

/// Characteristic names, in the fixed extraction order.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "mean",
    "var",
    "std",
    "entropy",
    "stability",
    "lumpiness",
    "max_level_shift",
    "time_level_shift",
    "max_var_shift",
    "time_var_shift",
    "max_kl_shift",
    "time_kl_shift",
    "crossing_points",
    "flat_spots",
    "hurst",
    "unitroot_kpss",
    "unitroot_pp",
    "trend",
    "seas_strength",
    "spike",
    "linearity",
    "curvature",
    "e_acf1",
    "e_acf10",
    "peak",
    "trough",
    "x_acf1",
    "x_acf10",
    "diff1_acf1",
    "diff1_acf10",
    "diff2_acf1",
    "diff2_acf10",
    "seas_acf1",
    "x_pacf5",
    "diff1x_pacf5",
    "diff2x_pacf5",
    "seas_pacf",
    "nonlinearity",
    "arch_stat",
    "alpha",
    "beta",
    "firstzero_ac",
];

/// A fixed-order vector of the 42 characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    values: [f64; NUM_FEATURES],
}

impl FeatureVector {
    /// All values, ordered as [`FEATURE_NAMES`].
    pub fn values(&self) -> &[f64; NUM_FEATURES] {
        &self.values
    }

    /// Value by characteristic name.
    ///
    /// # Panics
    /// Panics on an unknown name.
    pub fn get(&self, name: &str) -> f64 {
        let i = FEATURE_NAMES
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("unknown characteristic {name}"));
        self.values[i]
    }

    /// Elementwise difference `self - other` (the SHAP/GBoost input of
    /// §4.3.1 is the difference between decompressed and original).
    pub fn diff(&self, other: &FeatureVector) -> [f64; NUM_FEATURES] {
        let mut out = [0.0; NUM_FEATURES];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.values[i] - other.values[i];
        }
        out
    }

    /// Relative difference in percent, per Table 6:
    /// `|self - other| / |other| * 100` (0 when both are 0; capped at a
    /// large finite value when only the reference is 0).
    pub fn relative_diff_pct(&self, other: &FeatureVector) -> [f64; NUM_FEATURES] {
        let mut out = [0.0; NUM_FEATURES];
        for (i, o) in out.iter_mut().enumerate() {
            let (a, b) = (self.values[i], other.values[i]);
            *o = if b.abs() > 1e-12 {
                (a - b).abs() / b.abs() * 100.0
            } else if a.abs() > 1e-12 {
                1e6
            } else {
                0.0
            };
        }
        out
    }
}

/// Extraction options.
#[derive(Debug, Clone, Copy)]
pub struct FeatureOptions {
    /// Seasonal period in samples (`None` = non-seasonal features only).
    pub period: Option<usize>,
    /// Rolling-window width for the shift features (tsfeatures default
    /// uses the frequency; the paper's datasets make a daily window
    /// natural). Defaults to 48.
    pub shift_window: usize,
    /// Cap on series length (most recent points kept); `None` = all.
    pub cap: Option<usize>,
}

impl Default for FeatureOptions {
    fn default() -> Self {
        FeatureOptions { period: None, shift_window: 48, cap: Some(20_000) }
    }
}

/// Teräsvirta-style nonlinearity statistic: `n · ΔR²` of cubic lag terms
/// over the linear AR(1) fit.
fn nonlinearity(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 10 {
        return 0.0;
    }
    let y = &x[1..];
    let lag = &x[..n - 1];
    let m = y.len();
    let fit_r2 = |design: &dyn Fn(f64) -> Vec<f64>, cols: usize| -> f64 {
        let mut xm = Vec::with_capacity(m * cols);
        for &l in lag {
            xm.extend(design(l));
        }
        match forecast::linalg::lstsq(&xm, y, m, cols) {
            Ok(beta) => {
                let my = mean(y);
                let mut sse = 0.0;
                let mut sst = 0.0;
                for (r, &target) in y.iter().enumerate() {
                    let mut pred = 0.0;
                    for c in 0..cols {
                        pred += xm[r * cols + c] * beta[c];
                    }
                    sse += (target - pred) * (target - pred);
                    sst += (target - my) * (target - my);
                }
                if sst < 1e-12 {
                    0.0
                } else {
                    1.0 - sse / sst
                }
            }
            Err(_) => 0.0,
        }
    };
    let r2_lin = fit_r2(&|l| vec![1.0, l], 2);
    let r2_cubic = fit_r2(&|l| vec![1.0, l, l * l, l * l * l], 4);
    (m as f64 * (r2_cubic - r2_lin).max(0.0)).min(1e6)
}

/// ARCH effect statistic: `n · R²` of squared values regressed on 12 lags
/// of squared values.
fn arch_stat(x: &[f64]) -> f64 {
    const LAGS: usize = 12;
    let m = mean(x);
    let sq: Vec<f64> = x.iter().map(|v| (v - m) * (v - m)).collect();
    let n = sq.len();
    if n < LAGS + 10 {
        return 0.0;
    }
    let rows = n - LAGS;
    let cols = LAGS + 1;
    let mut xm = Vec::with_capacity(rows * cols);
    let mut y = Vec::with_capacity(rows);
    for t in LAGS..n {
        xm.push(1.0);
        for j in 1..=LAGS {
            xm.push(sq[t - j]);
        }
        y.push(sq[t]);
    }
    match forecast::linalg::lstsq(&xm, &y, rows, cols) {
        Ok(beta) => {
            let my = mean(&y);
            let mut sse = 0.0;
            let mut sst = 0.0;
            for (r, &target) in y.iter().enumerate() {
                let mut pred = 0.0;
                for c in 0..cols {
                    pred += xm[r * cols + c] * beta[c];
                }
                sse += (target - pred) * (target - pred);
                sst += (target - my) * (target - my);
            }
            if sst < 1e-12 {
                0.0
            } else {
                rows as f64 * (1.0 - sse / sst).max(0.0)
            }
        }
        Err(_) => 0.0,
    }
}

/// Extracts all 42 characteristics.
pub fn extract(series: &[f64], opts: FeatureOptions) -> FeatureVector {
    let x: &[f64] = match opts.cap {
        Some(cap) if series.len() > cap => &series[series.len() - cap..],
        _ => series,
    };
    let w = opts.shift_window.max(2);
    let d1 = acf::diff(x);
    let d2 = acf::diff(&d1);
    let dec = decompose(x, opts.period);
    let stl = stl_features(&dec);
    let holt = holt_parameters(x);
    let seas_lag = opts.period.unwrap_or(0);

    let level = rolling::max_level_shift(x, w);
    let var_s = rolling::max_var_shift(x, w);
    let kl = rolling::max_kl_shift(x, w);

    let values = [
        mean(x),
        variance(x),
        std_dev(x),
        spectral_entropy(x),
        rolling::stability(x, w),
        rolling::lumpiness(x, w),
        level.max,
        level.time,
        var_s.max,
        var_s.time,
        kl.max,
        kl.time,
        rolling::crossing_points(x),
        rolling::flat_spots(x),
        rolling::hurst(x),
        unitroot::kpss(x),
        unitroot::phillips_perron(x),
        stl.trend_strength,
        stl.seasonal_strength,
        stl.spike,
        stl.linearity,
        stl.curvature,
        stl.e_acf1,
        stl.e_acf10,
        stl.peak,
        stl.trough,
        acf::acf_at(x, 1),
        acf::sum_sq_acf(x, 10),
        acf::acf_at(&d1, 1),
        acf::sum_sq_acf(&d1, 10),
        acf::acf_at(&d2, 1),
        acf::sum_sq_acf(&d2, 10),
        if seas_lag > 1 { acf::acf_at(x, seas_lag) } else { 0.0 },
        acf::sum_sq_pacf(x, 5),
        acf::sum_sq_pacf(&d1, 5),
        acf::sum_sq_pacf(&d2, 5),
        if seas_lag > 1 { acf::pacf(x, seas_lag).last().copied().unwrap_or(0.0) } else { 0.0 },
        nonlinearity(x),
        arch_stat(x),
        holt.alpha,
        holt.beta,
        acf::first_zero_acf(x, 100) as f64,
    ];
    FeatureVector { values }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_noisy(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                10.0 + 3.0 * (i as f64 / 48.0 * std::f64::consts::TAU).sin() + noise * 0.5
            })
            .collect()
    }

    #[test]
    fn names_are_unique_and_42() {
        let mut names = FEATURE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_FEATURES);
        assert_eq!(NUM_FEATURES, 42);
    }

    #[test]
    fn extraction_is_finite_and_ordered() {
        let x = seasonal_noisy(3000, 5);
        let f = extract(&x, FeatureOptions { period: Some(48), ..Default::default() });
        for (name, v) in FEATURE_NAMES.iter().zip(f.values()) {
            assert!(v.is_finite(), "{name} is not finite: {v}");
        }
        assert_eq!(f.get("mean"), f.values()[0]);
        assert!((f.get("mean") - 10.0).abs() < 0.3);
    }

    #[test]
    fn seasonal_series_scores_high_seasonal_features() {
        let x = seasonal_noisy(3000, 6);
        let f = extract(&x, FeatureOptions { period: Some(48), ..Default::default() });
        assert!(f.get("seas_strength") > 0.8, "{}", f.get("seas_strength"));
        assert!(f.get("seas_acf1") > 0.5, "{}", f.get("seas_acf1"));
        assert!(f.get("entropy") < 0.7, "{}", f.get("entropy"));
    }

    #[test]
    fn identical_series_have_zero_diff() {
        let x = seasonal_noisy(2000, 7);
        let f1 = extract(&x, FeatureOptions::default());
        let f2 = extract(&x, FeatureOptions::default());
        assert!(f1.diff(&f2).iter().all(|&d| d == 0.0));
        assert!(f1.relative_diff_pct(&f2).iter().all(|&d| d == 0.0));
    }

    #[test]
    fn smoothing_reduces_kl_shift_and_variance() {
        // A crude stand-in for lossy compression: a moving average. The
        // paper's §4.3.1 observes compression acting as a smoother.
        let x = seasonal_noisy(4000, 8);
        let smoothed = crate::decomp::moving_average(&x, 9);
        let opts = FeatureOptions { period: Some(48), ..Default::default() };
        let f_raw = extract(&x, opts);
        let f_smooth = extract(&smoothed, opts);
        assert!(f_smooth.get("var") < f_raw.get("var"));
        assert!(f_smooth.get("entropy") < f_raw.get("entropy"));
    }

    #[test]
    fn relative_diff_handles_zero_reference() {
        let x = seasonal_noisy(1000, 9);
        let f = extract(&x, FeatureOptions::default());
        let mut other = f.clone();
        other.values[0] = 0.0; // reference mean = 0
        let rel = f.relative_diff_pct(&other);
        assert_eq!(rel[0], 1e6);
    }

    #[test]
    fn cap_limits_work() {
        let x = seasonal_noisy(30_000, 10);
        let f = extract(&x, FeatureOptions { cap: Some(2000), ..Default::default() });
        let f_tail = extract(&x[28_000..], FeatureOptions { cap: None, ..Default::default() });
        assert_eq!(f, f_tail);
    }

    #[test]
    fn arch_stat_detects_volatility_clustering() {
        // Alternate low/high volatility regimes.
        let mut state = 11u64;
        let mut x = Vec::with_capacity(4000);
        for i in 0..4000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            let vol = if (i / 200) % 2 == 0 { 0.1 } else { 3.0 };
            x.push(noise * vol);
        }
        let mut state = 21u64;
        let white: Vec<f64> = (0..4000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let hetero = arch_stat(&x);
        let homo = arch_stat(&white);
        assert!(hetero > homo, "arch {hetero} vs {homo}");
    }

    #[test]
    fn nonlinearity_detects_quadratic_map() {
        // A noisy logistic-style map is nonlinear in its lag.
        let mut x = vec![0.3];
        let mut state = 13u64;
        for _ in 1..3000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.01;
            let prev = *x.last().expect("non-empty");
            x.push(3.6 * prev * (1.0 - prev) + noise);
        }
        let lin: Vec<f64> = seasonal_noisy(3000, 14);
        assert!(nonlinearity(&x) > nonlinearity(&lin) * 2.0);
    }
}
