//! Correlation measures: Pearson (re-exported from `tsdata`) and Spearman
//! rank correlation, used for the Table-4 characteristic-to-TFE ranking.

pub use tsdata::metrics::pearson;

/// Average ranks (1-based), with ties receiving the mean of their ranks.
pub fn ranks(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("no NaN in ranks"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 tie; assign their mean.
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "spearman: length mismatch");
    if x.len() < 2 {
        return 0.0;
    }
    pearson(&ranks(x), &ranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_basic_and_ties() {
        assert_eq!(ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
        // Two-way tie: ranks 2 and 3 average to 2.5.
        assert_eq!(ranks(&[1.0, 5.0, 5.0, 9.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[7.0, 7.0, 7.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn spearman_monotone_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 10.0, 100.0, 1000.0]; // monotone but nonlinear
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        let z = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_robust_to_outliers_vs_pearson() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 2.0, 3.0, 4.0, 1000.0];
        let s = spearman(&x, &y);
        let p = pearson(&x, &y);
        assert!((s - 1.0).abs() < 1e-12);
        assert!(p < s, "pearson {p} should be dragged below spearman {s}");
    }

    #[test]
    fn spearman_of_independent_is_small() {
        let x: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64).collect();
        let y: Vec<f64> = (0..200).map(|i| ((i * 53) % 97) as f64).collect();
        assert!(spearman(&x, &y).abs() < 0.2);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
        // Constant input: correlation undefined -> pearson returns 0.
        assert_eq!(spearman(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }
}
