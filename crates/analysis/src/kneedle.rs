//! Kneedle knee/elbow detection (Satopaa et al., ICDCSW 2011), used for
//! the paper's inflection-point analysis (§4.3.2, Table 5): the TE at
//! which TFE starts rising rapidly.

/// Curve orientation for Kneedle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Concave increasing (knee = point of diminishing returns).
    ConcaveIncreasing,
    /// Convex increasing (elbow = point where growth accelerates) — the
    /// shape of the paper's TFE-vs-TE curves.
    ConvexIncreasing,
}

/// Finds the knee/elbow of a curve given as parallel `x`/`y` arrays
/// (x strictly increasing). Returns the index of the detected point, or
/// `None` when the curve is degenerate (mismatched arrays, too short,
/// or flat).
///
/// `sensitivity` is Kneedle's `S` (1.0 is the paper default; larger is
/// more conservative).
///
/// ```
/// use analysis::kneedle::{kneedle, Shape};
/// let x: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
/// let y: Vec<f64> = x.iter().map(|v| v * v).collect(); // convex: elbow at 0.5
/// let k = kneedle(&x, &y, Shape::ConvexIncreasing, 1.0).unwrap();
/// assert!((x[k] - 0.5).abs() < 0.05);
/// ```
pub fn kneedle(x: &[f64], y: &[f64], shape: Shape, sensitivity: f64) -> Option<usize> {
    if x.len() != y.len() {
        // Mismatched inputs describe no curve; degenerate, not a panic.
        return None;
    }
    let n = x.len();
    if n < 3 {
        return None;
    }
    let (x0, x1) = (x[0], x[n - 1]);
    let ylo = y.iter().cloned().fold(f64::INFINITY, f64::min);
    let yhi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if x1 - x0 <= 0.0 || yhi - ylo <= 0.0 {
        return None;
    }
    // Normalize to the unit square.
    let xn: Vec<f64> = x.iter().map(|&v| (v - x0) / (x1 - x0)).collect();
    let yn: Vec<f64> = y.iter().map(|&v| (v - ylo) / (yhi - ylo)).collect();
    // Difference curve: distance from the diagonal, oriented so the
    // knee/elbow is a maximum.
    let d: Vec<f64> = match shape {
        Shape::ConcaveIncreasing => xn.iter().zip(&yn).map(|(a, b)| b - a).collect(),
        Shape::ConvexIncreasing => xn.iter().zip(&yn).map(|(a, b)| a - b).collect(),
    };
    // Local maxima of the difference curve.
    let mut maxima: Vec<usize> = Vec::new();
    for i in 1..n - 1 {
        if d[i] >= d[i - 1] && d[i] >= d[i + 1] {
            maxima.push(i);
        }
    }
    if maxima.is_empty() {
        return None;
    }
    // Threshold: each maximum must stay above T = d_max − S·mean(Δx).
    let mean_dx: f64 = xn.windows(2).map(|w| w[1] - w[0]).sum::<f64>() / (n - 1) as f64;
    for &i in &maxima {
        let threshold = d[i] - sensitivity * mean_dx;
        // Knee confirmed if d drops below the threshold before the next
        // local maximum (or the end of the curve).
        let next_max = maxima.iter().find(|&&j| j > i).copied().unwrap_or(n - 1);
        if d[i + 1..=next_max].iter().any(|&v| v < threshold) {
            return Some(i);
        }
        // Reaching the end of the curve without rising again also counts.
        if next_max == n - 1 && d[n - 1] < threshold {
            return Some(i);
        }
    }
    // Fall back to the global maximum of the difference curve.
    maxima.into_iter().max_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("finite distances"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knee_of_concave_sqrt() {
        // y = sqrt(x): knee of the normalized curve is at x = 0.25
        // (maximum of sqrt(t) − t).
        let x: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let y: Vec<f64> = x.iter().map(|v| v.sqrt()).collect();
        let k = kneedle(&x, &y, Shape::ConcaveIncreasing, 1.0).expect("knee exists");
        assert!((x[k] - 0.25).abs() < 0.05, "knee at {}", x[k]);
    }

    #[test]
    fn elbow_of_convex_square() {
        // y = x²: maximum of t − t² is at 0.5.
        let x: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let k = kneedle(&x, &y, Shape::ConvexIncreasing, 1.0).expect("elbow exists");
        assert!((x[k] - 0.5).abs() < 0.05, "elbow at {}", x[k]);
    }

    #[test]
    fn hockey_stick_elbow_found_at_bend() {
        // Flat then steep: the elbow is at the bend (x = 0.7).
        let x: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| if v < 0.7 { 0.02 * v } else { 0.02 * 0.7 + 3.0 * (v - 0.7) })
            .collect();
        let k = kneedle(&x, &y, Shape::ConvexIncreasing, 1.0).expect("elbow exists");
        assert!((x[k] - 0.7).abs() < 0.08, "elbow at {}", x[k]);
    }

    #[test]
    fn degenerate_curves_return_none() {
        assert_eq!(kneedle(&[0.0, 1.0], &[0.0, 1.0], Shape::ConvexIncreasing, 1.0), None);
        let x = [0.0, 0.5, 1.0];
        assert_eq!(kneedle(&x, &[2.0, 2.0, 2.0], Shape::ConvexIncreasing, 1.0), None);
        assert_eq!(kneedle(&[1.0, 1.0, 1.0], &x, Shape::ConvexIncreasing, 1.0), None);
    }

    #[test]
    fn mismatched_lengths_return_none() {
        // Regression: this used to panic via assert_eq! instead of
        // reporting a degenerate curve.
        let x: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..=7).map(|i| (i as f64).sqrt()).collect();
        assert_eq!(kneedle(&x, &y, Shape::ConcaveIncreasing, 1.0), None);
        assert_eq!(kneedle(&y, &x, Shape::ConvexIncreasing, 1.0), None);
        assert_eq!(kneedle(&[], &x, Shape::ConvexIncreasing, 1.0), None);
    }

    #[test]
    fn straight_line_has_no_strong_knee() {
        let x: Vec<f64> = (0..=50).map(|i| i as f64).collect();
        let y = x.clone();
        // The difference curve is ~0 everywhere; if anything is returned it
        // must be weakly supported — accept None or tiny-d index.
        if let Some(k) = kneedle(&x, &y, Shape::ConcaveIncreasing, 1.0) {
            let d = (y[k] - y[0]) / (y[50] - y[0]) - (x[k] - x[0]) / (x[50] - x[0]);
            assert!(d.abs() < 1e-9);
        }
    }

    #[test]
    fn noisy_tfe_like_curve() {
        // Synthetic TFE-vs-TE: flat with noise, then super-linear growth.
        let x: Vec<f64> = (0..13).map(|i| 0.01 + i as f64 * 0.006).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &te)| {
                let noise = if i % 2 == 0 { 0.002 } else { -0.002 };
                if te < 0.05 {
                    noise
                } else {
                    (te - 0.05) * (te - 0.05) * 120.0 + noise
                }
            })
            .collect();
        let k = kneedle(&x, &y, Shape::ConvexIncreasing, 1.0).expect("elbow exists");
        assert!((0.035..0.075).contains(&x[k]), "elbow TE {}", x[k]);
    }
}
