//! Autocorrelation and partial autocorrelation machinery used by the
//! `acf_features` / `pacf_features` characteristics (§4.3.1).

/// Sample autocorrelation at lags `1..=max_lag` (lag 0 omitted).
/// Uses the standard biased estimator (divides by `n` and the overall
/// variance), matching R's `acf`.
pub fn acf(x: &[f64], max_lag: usize) -> Vec<f64> {
    let n = x.len();
    if n < 2 {
        return vec![0.0; max_lag];
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let denom: f64 = x.iter().map(|v| (v - mean) * (v - mean)).sum();
    (1..=max_lag)
        .map(|k| {
            if k >= n || denom == 0.0 {
                0.0
            } else {
                let num: f64 = (0..n - k).map(|t| (x[t] - mean) * (x[t + k] - mean)).sum();
                num / denom
            }
        })
        .collect()
}

/// Autocorrelation at a single lag.
pub fn acf_at(x: &[f64], lag: usize) -> f64 {
    if lag == 0 {
        return 1.0;
    }
    acf(x, lag).pop().unwrap_or(0.0)
}

/// Partial autocorrelations at lags `1..=max_lag` via the Durbin–Levinson
/// recursion.
pub fn pacf(x: &[f64], max_lag: usize) -> Vec<f64> {
    let rho = acf(x, max_lag);
    let mut out = Vec::with_capacity(max_lag);
    if max_lag == 0 {
        return out;
    }
    // phi[k][j] coefficients of AR(k); 1-indexed per the recursion.
    let mut phi_prev = vec![0.0; max_lag + 1];
    let mut phi = vec![0.0; max_lag + 1];
    for k in 1..=max_lag {
        let rk = rho[k - 1];
        let pk = if k == 1 {
            rk
        } else {
            let num = rk - (1..k).map(|j| phi_prev[j] * rho[k - 1 - j]).sum::<f64>();
            let den = 1.0 - (1..k).map(|j| phi_prev[j] * rho[j - 1]).sum::<f64>();
            if den.abs() < 1e-12 {
                0.0
            } else {
                num / den
            }
        };
        phi[k] = pk;
        for j in 1..k {
            phi[j] = phi_prev[j] - pk * phi_prev[k - j];
        }
        out.push(pk);
        phi_prev[..=k].copy_from_slice(&phi[..=k]);
    }
    out
}

/// First difference.
pub fn diff(x: &[f64]) -> Vec<f64> {
    x.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Sum of squares of the first `k` autocorrelations (tsfeatures'
/// `x_acf10`-style aggregate).
pub fn sum_sq_acf(x: &[f64], k: usize) -> f64 {
    acf(x, k).iter().map(|r| r * r).sum()
}

/// Sum of squares of the first `k` partial autocorrelations
/// (`x_pacf5`-style aggregate).
pub fn sum_sq_pacf(x: &[f64], k: usize) -> f64 {
    pacf(x, k).iter().map(|r| r * r).sum()
}

/// Index (lag) of the first zero crossing of the ACF; `max_lag` if none.
pub fn first_zero_acf(x: &[f64], max_lag: usize) -> usize {
    let r = acf(x, max_lag);
    r.iter().position(|&v| v <= 0.0).map_or(max_lag, |i| i + 1)
}

/// Index (lag) of the first local minimum of the ACF; `max_lag` if none.
pub fn first_min_acf(x: &[f64], max_lag: usize) -> usize {
    let r = acf(x, max_lag);
    for i in 1..r.len().saturating_sub(1) {
        if r[i] < r[i - 1] && r[i] < r[i + 1] {
            return i + 1;
        }
    }
    max_lag
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1(n: usize, phi: f64) -> Vec<f64> {
        let mut state = 0xDEADBEEFu64;
        let mut noise = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut y = vec![0.0];
        for _ in 1..n {
            let prev = *y.last().expect("non-empty");
            y.push(phi * prev + noise());
        }
        y
    }

    #[test]
    fn acf_of_constant_is_zero() {
        assert!(acf(&[3.0; 50], 5).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn acf_of_ar1_decays_geometrically() {
        let x = ar1(20_000, 0.7);
        let r = acf(&x, 3);
        assert!((r[0] - 0.7).abs() < 0.05, "acf1 {}", r[0]);
        assert!((r[1] - 0.49).abs() < 0.06, "acf2 {}", r[1]);
        assert!((r[2] - 0.343).abs() < 0.07, "acf3 {}", r[2]);
    }

    #[test]
    fn acf_alternating_series() {
        let x: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r = acf(&x, 2);
        assert!(r[0] < -0.9);
        assert!(r[1] > 0.9);
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag1() {
        let x = ar1(20_000, 0.6);
        let p = pacf(&x, 5);
        assert!((p[0] - 0.6).abs() < 0.05, "pacf1 {}", p[0]);
        for (k, &v) in p.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.06, "pacf{} = {v} should be ~0", k + 1);
        }
    }

    #[test]
    fn pacf_lag1_equals_acf1() {
        let x = ar1(5000, 0.4);
        assert!((pacf(&x, 1)[0] - acf(&x, 1)[0]).abs() < 1e-12);
    }

    #[test]
    fn diff_and_aggregates() {
        assert_eq!(diff(&[1.0, 4.0, 9.0]), vec![3.0, 5.0]);
        let x = ar1(2000, 0.8);
        assert!(sum_sq_acf(&x, 10) > 0.5);
        assert!(sum_sq_pacf(&x, 5) > 0.3);
    }

    #[test]
    fn first_zero_and_min() {
        // Sine with period 20: ACF crosses zero around lag 5, min near 10.
        let x: Vec<f64> =
            (0..2000).map(|i| (i as f64 / 20.0 * std::f64::consts::TAU).sin()).collect();
        let z = first_zero_acf(&x, 30);
        assert!((4..=7).contains(&z), "first zero at {z}");
        let m = first_min_acf(&x, 30);
        assert!((8..=12).contains(&m), "first min at {m}");
    }

    #[test]
    fn short_series_safe() {
        assert_eq!(acf(&[1.0], 3), vec![0.0, 0.0, 0.0]);
        assert_eq!(pacf(&[], 2).len(), 2);
        assert_eq!(acf_at(&[1.0, 2.0], 0), 1.0);
    }
}
