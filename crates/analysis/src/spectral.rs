//! Spectral analysis: an iterative radix-2 FFT and the spectral-entropy
//! characteristic (`entropy` in tsfeatures).

use tsdata::stats::mean;

/// In-place iterative radix-2 Cooley–Tukey FFT over interleaved
/// `(re, im)` pairs.
///
/// # Panics
/// Panics if the number of complex points is not a power of two.
pub fn fft(buf: &mut [(f64, f64)]) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -std::f64::consts::TAU / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut cur = (1.0, 0.0);
            for k in 0..len / 2 {
                let (ar, ai) = buf[start + k];
                let (br, bi) = buf[start + k + len / 2];
                let tr = br * cur.0 - bi * cur.1;
                let ti = br * cur.1 + bi * cur.0;
                buf[start + k] = (ar + tr, ai + ti);
                buf[start + k + len / 2] = (ar - tr, ai - ti);
                cur = (cur.0 * wr - cur.1 * wi, cur.0 * wi + cur.1 * wr);
            }
        }
        len *= 2;
    }
}

/// One-sided periodogram of a real series (zero-padded to a power of two,
/// mean removed). Returns power at frequencies `1..n/2`.
pub fn periodogram(x: &[f64]) -> Vec<f64> {
    if x.len() < 4 {
        return Vec::new();
    }
    let m = mean(x);
    let n = x.len().next_power_of_two();
    let mut buf: Vec<(f64, f64)> =
        (0..n).map(|i| if i < x.len() { (x[i] - m, 0.0) } else { (0.0, 0.0) }).collect();
    fft(&mut buf);
    (1..n / 2).map(|k| buf[k].0 * buf[k].0 + buf[k].1 * buf[k].1).collect()
}

/// Normalized spectral entropy in `[0, 1]`: Shannon entropy of the
/// normalized periodogram divided by `ln(#frequencies)`. Near 1 for white
/// noise, near 0 for a pure tone.
pub fn spectral_entropy(x: &[f64]) -> f64 {
    let p = periodogram(x);
    let total: f64 = p.iter().sum();
    if p.len() < 2 || total <= 0.0 {
        return 1.0;
    }
    let h: f64 = p
        .iter()
        .filter(|&&v| v > 0.0)
        .map(|&v| {
            let q = v / total;
            -q * q.ln()
        })
        .sum();
    (h / (p.len() as f64).ln()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![(0.0, 0.0); 8];
        buf[0] = (1.0, 0.0);
        fft(&mut buf);
        for &(re, im) in &buf {
            assert!((re - 1.0).abs() < 1e-12 && im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_cosine_concentrates() {
        let n = 64;
        let mut buf: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i as f64 * std::f64::consts::TAU * 4.0 / n as f64).cos(), 0.0))
            .collect();
        fft(&mut buf);
        // Energy at bins 4 and n-4 only.
        let mag: Vec<f64> = buf.iter().map(|(r, i)| (r * r + i * i).sqrt()).collect();
        assert!(mag[4] > 10.0 && mag[60] > 10.0);
        for (k, &m) in mag.iter().enumerate() {
            if k != 4 && k != 60 {
                assert!(m < 1e-9, "bin {k} has {m}");
            }
        }
    }

    #[test]
    fn fft_parseval() {
        let x: Vec<f64> = (0..32).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mut buf: Vec<(f64, f64)> = x.iter().map(|&v| (v, 0.0)).collect();
        fft(&mut buf);
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 = buf.iter().map(|(r, i)| r * r + i * i).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        fft(&mut [(0.0, 0.0); 6]);
    }

    #[test]
    fn entropy_separates_tone_from_noise() {
        let tone: Vec<f64> =
            (0..1024).map(|i| (i as f64 / 16.0 * std::f64::consts::TAU).sin()).collect();
        let mut state = 99u64;
        let noise: Vec<f64> = (0..1024)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let e_tone = spectral_entropy(&tone);
        let e_noise = spectral_entropy(&noise);
        assert!(e_tone < 0.3, "tone entropy {e_tone}");
        assert!(e_noise > 0.8, "noise entropy {e_noise}");
    }

    #[test]
    fn entropy_of_tiny_input_is_one() {
        assert_eq!(spectral_entropy(&[1.0, 2.0]), 1.0);
        assert_eq!(spectral_entropy(&[0.0; 10]), 1.0);
    }
}
