//! Characteristics monitoring — the paper's §4.3.3 guideline turned into
//! an API: "when these characteristics show small deviations of even 1%,
//! it is a sign that the forecasting models will not perform optimally,
//! thereby making them key indicators to monitor", and "URPP shows more
//! uniformity across datasets, allowing users to set a threshold for
//! alerts at even a 5% deviation".
//!
//! A [`CharacteristicsMonitor`] is configured with per-characteristic
//! relative-deviation thresholds (defaults follow Table 6's guidance),
//! computes the reference characteristics of the raw stream once, and
//! checks decompressed batches against them.

use crate::features::{extract, FeatureOptions, FeatureVector, FEATURE_NAMES};

/// Severity of a deviation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Above the warning threshold.
    Warning,
    /// Above twice the warning threshold.
    Critical,
}

impl Severity {
    /// Classifies a relative deviation against a warning threshold (both
    /// in percent). `None` when the deviation is at or below the
    /// threshold; [`Severity::Critical`] strictly above twice the
    /// threshold, [`Severity::Warning`] otherwise. Both comparisons are
    /// strict, so a deviation of exactly `threshold` raises nothing and
    /// exactly `2 × threshold` stays a warning. This is the single
    /// source of severity used by [`CharacteristicsMonitor::check`].
    pub fn from_deviation(deviation_pct: f64, threshold_pct: f64) -> Option<Severity> {
        if deviation_pct > 2.0 * threshold_pct {
            Some(Severity::Critical)
        } else if deviation_pct > threshold_pct {
            Some(Severity::Warning)
        } else {
            None
        }
    }
}

/// One raised alert.
#[derive(Debug, Clone)]
pub struct Alert {
    /// Characteristic name.
    pub characteristic: &'static str,
    /// Observed relative deviation in percent.
    pub deviation_pct: f64,
    /// The threshold that was crossed.
    pub threshold_pct: f64,
    /// Severity class.
    pub severity: Severity,
}

/// Per-characteristic monitoring thresholds (relative deviation, %).
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// `(characteristic, threshold_pct)` pairs; characteristics not
    /// listed are not monitored.
    pub thresholds: Vec<(&'static str, f64)>,
    /// Feature-extraction options (period, window, cap).
    pub features: FeatureOptions,
}

impl MonitorConfig {
    /// The paper's §4.3.3 guidance: the three stable indicators at 1% and
    /// `unitroot_pp` at 5%; `max_kl_shift` is tracked with a loose
    /// threshold because its scale is method-dependent.
    pub fn paper_defaults(features: FeatureOptions) -> Self {
        MonitorConfig {
            thresholds: vec![
                ("max_level_shift", 1.0),
                ("seas_acf1", 1.0),
                ("max_var_shift", 1.0),
                ("unitroot_pp", 5.0),
                ("max_kl_shift", 30.0),
            ],
            features,
        }
    }
}

/// Watches decompressed streams for characteristic drift against a raw
/// reference.
#[derive(Debug, Clone)]
pub struct CharacteristicsMonitor {
    config: MonitorConfig,
    reference: FeatureVector,
}

impl CharacteristicsMonitor {
    /// Builds the monitor from the raw reference stream.
    pub fn new(reference_values: &[f64], config: MonitorConfig) -> Self {
        let reference = extract(reference_values, config.features);
        CharacteristicsMonitor { config, reference }
    }

    /// The reference characteristics.
    pub fn reference(&self) -> &FeatureVector {
        &self.reference
    }

    /// Checks a decompressed batch; returns all alerts, most severe first.
    pub fn check(&self, decompressed: &[f64]) -> Vec<Alert> {
        let current = extract(decompressed, self.config.features);
        let rel = current.relative_diff_pct(&self.reference);
        let mut alerts: Vec<Alert> = self
            .config
            .thresholds
            .iter()
            .filter_map(|&(name, threshold)| {
                let idx = FEATURE_NAMES
                    .iter()
                    .position(|&n| n == name)
                    .unwrap_or_else(|| panic!("unknown monitored characteristic {name}"));
                let deviation = rel[idx];
                Severity::from_deviation(deviation, threshold).map(|severity| Alert {
                    characteristic: FEATURE_NAMES[idx],
                    deviation_pct: deviation,
                    threshold_pct: threshold,
                    severity,
                })
            })
            .collect();
        alerts.sort_by(|a, b| {
            let ka = a.deviation_pct / a.threshold_pct;
            let kb = b.deviation_pct / b.threshold_pct;
            kb.partial_cmp(&ka).expect("finite deviations")
        });
        alerts
    }

    /// Convenience: whether the batch passes with no alerts.
    pub fn passes(&self, decompressed: &[f64]) -> bool {
        self.check(decompressed).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                10.0 + 3.0 * (i as f64 / 48.0 * std::f64::consts::TAU).sin() + 0.3 * noise
            })
            .collect()
    }

    fn config() -> MonitorConfig {
        MonitorConfig::paper_defaults(FeatureOptions {
            period: Some(48),
            shift_window: 48,
            cap: None,
        })
    }

    #[test]
    fn identical_stream_passes() {
        let x = seasonal(2000, 1);
        let monitor = CharacteristicsMonitor::new(&x, config());
        assert!(monitor.passes(&x));
    }

    #[test]
    fn heavy_smoothing_raises_alerts() {
        let x = seasonal(2000, 2);
        let monitor = CharacteristicsMonitor::new(&x, config());
        // Crush the signal: zero-order hold every 32 points (a brutal
        // PMC-like transformation far past any sane error bound).
        let crushed: Vec<f64> =
            x.chunks(32).flat_map(|c| std::iter::repeat_n(c[0], c.len())).collect();
        let alerts = monitor.check(&crushed);
        assert!(!alerts.is_empty(), "crushed stream must alert");
        // Sorted most-severe first.
        for w in alerts.windows(2) {
            assert!(
                w[0].deviation_pct / w[0].threshold_pct >= w[1].deviation_pct / w[1].threshold_pct
            );
        }
    }

    #[test]
    fn severity_classes() {
        let x = seasonal(2000, 3);
        let monitor = CharacteristicsMonitor::new(&x, config());
        let crushed: Vec<f64> =
            x.chunks(64).flat_map(|c| std::iter::repeat_n(c[0], c.len())).collect();
        let alerts = monitor.check(&crushed);
        assert!(
            alerts.iter().any(|a| a.severity == Severity::Critical),
            "a 64-point hold should be critical somewhere: {alerts:?}"
        );
    }

    #[test]
    fn mild_compression_like_noise_stays_quiet_or_warns() {
        // A within-1%-bound perturbation must never go critical on the
        // stable characteristics.
        let x = seasonal(2000, 4);
        let monitor = CharacteristicsMonitor::new(&x, config());
        let perturbed: Vec<f64> =
            x.iter().enumerate().map(|(i, v)| v * (1.0 + 0.002 * ((i % 3) as f64 - 1.0))).collect();
        let alerts = monitor.check(&perturbed);
        for a in &alerts {
            assert_ne!(
                (a.characteristic, a.severity),
                ("max_level_shift", Severity::Critical),
                "mild perturbation flagged critical: {alerts:?}"
            );
        }
    }

    #[test]
    fn severity_boundaries_are_strict() {
        // Exactly the threshold: no alert (the guideline is "deviations
        // *of even* 1%", crossed strictly).
        assert_eq!(Severity::from_deviation(1.0, 1.0), None);
        assert_eq!(Severity::from_deviation(0.0, 1.0), None);
        assert_eq!(Severity::from_deviation(4.999, 5.0), None);
        // Just above the threshold: Warning.
        assert_eq!(Severity::from_deviation(1.0 + 1e-9, 1.0), Some(Severity::Warning));
        assert_eq!(Severity::from_deviation(1.5, 1.0), Some(Severity::Warning));
        // Exactly twice the threshold: still Warning (strict comparison).
        assert_eq!(Severity::from_deviation(2.0, 1.0), Some(Severity::Warning));
        assert_eq!(Severity::from_deviation(10.0, 5.0), Some(Severity::Warning));
        // Strictly above twice the threshold: Critical.
        assert_eq!(Severity::from_deviation(2.0 + 1e-9, 1.0), Some(Severity::Critical));
        assert_eq!(Severity::from_deviation(11.0, 5.0), Some(Severity::Critical));
    }

    #[test]
    fn identity_transform_raises_no_alerts() {
        // A bound of ε = 0 makes the transformation the identity, so the
        // monitored characteristics deviate by exactly 0% and every
        // threshold comparison stays strictly below.
        let x = seasonal(2000, 6);
        let monitor = CharacteristicsMonitor::new(&x, config());
        let identity = x.clone();
        let alerts = monitor.check(&identity);
        assert!(alerts.is_empty(), "identity transform must not alert: {alerts:?}");
        assert!(monitor.passes(&identity));
    }

    #[test]
    #[should_panic(expected = "unknown monitored characteristic")]
    fn unknown_characteristic_panics() {
        let x = seasonal(500, 5);
        let cfg = MonitorConfig {
            thresholds: vec![("no_such_feature", 1.0)],
            features: FeatureOptions { period: None, shift_window: 24, cap: None },
        };
        CharacteristicsMonitor::new(&x, cfg).check(&x);
    }
}
