//! Exact TreeSHAP (Lundberg et al., Nature MI 2020, Algorithm 2) for the
//! gradient-boosted trees in `forecast::gboost`.
//!
//! The paper trains a GBoost model to predict TFE from the 42
//! characteristic differences and ranks characteristics by SHAP values
//! (§4.3.1, Figure 5). This module reproduces that attribution with the
//! polynomial-time path-dependent algorithm, validated against brute-force
//! Shapley enumeration in the tests.

use forecast::gboost::GbmRegressor;
use forecast::tree::{Node, RegressionTree};

#[derive(Debug, Clone, Copy)]
struct PathElement {
    /// Feature index (`usize::MAX` for the dummy root element).
    d: usize,
    /// Fraction of zero (feature absent) paths flowing through.
    z: f64,
    /// Fraction of one (feature present) paths flowing through.
    o: f64,
    /// Permutation weight.
    w: f64,
}

fn extend(m: &mut Vec<PathElement>, pz: f64, po: f64, pi: usize) {
    let l = m.len();
    m.push(PathElement { d: pi, z: pz, o: po, w: if l == 0 { 1.0 } else { 0.0 } });
    for i in (0..l).rev() {
        m[i + 1].w += po * m[i].w * (i + 1) as f64 / (l + 1) as f64;
        m[i].w = pz * m[i].w * (l - i) as f64 / (l + 1) as f64;
    }
}

fn unwind(m: &mut Vec<PathElement>, i: usize) {
    let l = m.len() - 1;
    let (o_i, z_i) = (m[i].o, m[i].z);
    let mut n = m[l].w;
    for j in (0..l).rev() {
        if o_i != 0.0 {
            let t = m[j].w;
            m[j].w = n * (l + 1) as f64 / ((j + 1) as f64 * o_i);
            n = t - m[j].w * z_i * (l - j) as f64 / (l + 1) as f64;
        } else {
            m[j].w = m[j].w * (l + 1) as f64 / (z_i * (l - j) as f64);
        }
    }
    for j in i..l {
        m[j].d = m[j + 1].d;
        m[j].z = m[j + 1].z;
        m[j].o = m[j + 1].o;
    }
    m.pop();
}

fn unwound_sum(m: &[PathElement], i: usize) -> f64 {
    let l = m.len() - 1;
    let (o_i, z_i) = (m[i].o, m[i].z);
    let mut total = 0.0;
    let mut n = m[l].w;
    for j in (0..l).rev() {
        if o_i != 0.0 {
            let t = n * (l + 1) as f64 / ((j + 1) as f64 * o_i);
            total += t;
            n = m[j].w - t * z_i * (l - j) as f64 / (l + 1) as f64;
        } else {
            total += m[j].w * (l + 1) as f64 / (z_i * (l - j) as f64);
        }
    }
    total
}

fn node_cover(nodes: &[Node], i: usize) -> f64 {
    match &nodes[i] {
        Node::Leaf { cover, .. } => *cover,
        Node::Split { cover, .. } => *cover,
    }
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    nodes: &[Node],
    j: usize,
    x: &[f64],
    phi: &mut [f64],
    m: &mut Vec<PathElement>,
    pz: f64,
    po: f64,
    pi: usize,
) {
    extend(m, pz, po, pi);
    match &nodes[j] {
        Node::Leaf { value, .. } => {
            for i in 1..m.len() {
                let w = unwound_sum(m, i);
                phi[m[i].d] += w * (m[i].o - m[i].z) * value;
            }
        }
        Node::Split { feature, threshold, left, right, cover } => {
            let (hot, cold) =
                if x[*feature] < *threshold { (*left, *right) } else { (*right, *left) };
            let mut iz = 1.0;
            let mut io = 1.0;
            // Skip the dummy element at index 0.
            if let Some(k) = (1..m.len()).find(|&k| m[k].d == *feature) {
                iz = m[k].z;
                io = m[k].o;
                unwind(m, k);
            }
            let r_hot = node_cover(nodes, hot) / cover;
            let r_cold = node_cover(nodes, cold) / cover;
            let mut m_hot = m.clone();
            recurse(nodes, hot, x, phi, &mut m_hot, iz * r_hot, io, *feature);
            let mut m_cold = m.clone();
            recurse(nodes, cold, x, phi, &mut m_cold, iz * r_cold, 0.0, *feature);
        }
    }
}

/// SHAP values of one tree for input `x` (length = feature count).
pub fn tree_shap(tree: &RegressionTree, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), tree.num_features(), "feature dimension mismatch");
    let mut phi = vec![0.0; tree.num_features()];
    let mut m = Vec::new();
    recurse(tree.nodes(), 0, x, &mut phi, &mut m, 1.0, 1.0, usize::MAX - 1);
    // The dummy feature index must never be written; guard via length.
    phi
}

/// SHAP values of a gradient-boosting ensemble: the sum of per-tree SHAP
/// values scaled by the learning rate (the base prediction carries no
/// attribution).
pub fn gbm_shap(model: &GbmRegressor, x: &[f64]) -> Vec<f64> {
    let mut phi = vec![0.0; model.num_features()];
    for tree in model.trees() {
        for (p, s) in phi.iter_mut().zip(tree_shap(tree, x)) {
            *p += model.learning_rate() * s;
        }
    }
    phi
}

/// Mean absolute SHAP value per feature over a dataset — the global
/// importance ranking of Figure 5.
pub fn mean_abs_shap(model: &GbmRegressor, features: &[f64], n_rows: usize) -> Vec<f64> {
    let nf = model.num_features();
    assert_eq!(features.len(), n_rows * nf, "feature matrix shape");
    let mut acc = vec![0.0; nf];
    for r in 0..n_rows {
        let phi = gbm_shap(model, &features[r * nf..(r + 1) * nf]);
        for (a, p) in acc.iter_mut().zip(phi) {
            *a += p.abs();
        }
    }
    for a in acc.iter_mut() {
        *a /= n_rows as f64;
    }
    acc
}

/// Tree expectation with a feature subset fixed to `x` (the value function
/// of path-dependent TreeSHAP). Public for the brute-force validation in
/// tests and for ad-hoc analyses.
pub fn expected_value(tree: &RegressionTree, x: &[f64], subset: &[bool]) -> f64 {
    fn rec(nodes: &[Node], i: usize, x: &[f64], subset: &[bool]) -> f64 {
        match &nodes[i] {
            Node::Leaf { value, .. } => *value,
            Node::Split { feature, threshold, left, right, cover } => {
                if subset[*feature] {
                    let next = if x[*feature] < *threshold { *left } else { *right };
                    rec(nodes, next, x, subset)
                } else {
                    let cl = node_cover(nodes, *left);
                    let cr = node_cover(nodes, *right);
                    (cl * rec(nodes, *left, x, subset) + cr * rec(nodes, *right, x, subset)) / cover
                }
            }
        }
    }
    rec(tree.nodes(), 0, x, subset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use forecast::gboost::GbmConfig;
    use forecast::tree::TreeConfig;

    /// Brute-force Shapley values by subset enumeration (small M only).
    fn brute_force_shap(tree: &RegressionTree, x: &[f64]) -> Vec<f64> {
        let m = tree.num_features();
        assert!(m <= 12, "brute force only for small feature counts");
        let fact: Vec<f64> = {
            let mut f = vec![1.0];
            for i in 1..=m {
                let prev = f[i - 1];
                f.push(prev * i as f64);
            }
            f
        };
        let mut phi = vec![0.0; m];
        for i in 0..m {
            for mask in 0..(1u32 << m) {
                if mask & (1 << i) != 0 {
                    continue;
                }
                let s = mask.count_ones() as usize;
                let mut subset = vec![false; m];
                for (j, b) in subset.iter_mut().enumerate() {
                    *b = mask & (1 << j) != 0;
                }
                let v_without = expected_value(tree, x, &subset);
                subset[i] = true;
                let v_with = expected_value(tree, x, &subset);
                let weight = fact[s] * fact[m - s - 1] / fact[m];
                phi[i] += weight * (v_with - v_without);
            }
        }
        phi
    }

    fn training_data(n: usize, nf: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut x = Vec::with_capacity(n * nf);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<f64> = (0..nf).map(|_| rand() * 4.0).collect();
            // Target uses features 0 and 1 plus an interaction.
            let t = 2.0 * row[0]
                + if row[1] > 0.0 { 3.0 } else { -1.0 }
                + row[0] * row.get(2).copied().unwrap_or(0.0) * 0.5;
            x.extend_from_slice(&row);
            y.push(t);
        }
        (x, y)
    }

    #[test]
    fn treeshap_matches_brute_force() {
        let (x, y) = training_data(300, 4, 1);
        let tree = RegressionTree::fit(&x, &y, 4, TreeConfig { max_depth: 4, min_samples_leaf: 3 });
        for r in [0usize, 7, 42, 100] {
            let sample = &x[r * 4..(r + 1) * 4];
            let fast = tree_shap(&tree, sample);
            let brute = brute_force_shap(&tree, sample);
            for (f, b) in fast.iter().zip(&brute) {
                assert!((f - b).abs() < 1e-9, "fast {f} vs brute {b}");
            }
        }
    }

    #[test]
    fn treeshap_local_accuracy() {
        // sum(phi) = f(x) - E[f(x)] (the leaf-cover-weighted mean).
        let (x, y) = training_data(200, 5, 2);
        let tree = RegressionTree::fit(&x, &y, 5, TreeConfig { max_depth: 3, min_samples_leaf: 2 });
        let e_fx = expected_value(&tree, &x[..5], &[false; 5]);
        for r in [0usize, 11, 99] {
            let sample = &x[r * 5..(r + 1) * 5];
            let phi_sum: f64 = tree_shap(&tree, sample).iter().sum();
            let fx = tree.predict(sample);
            assert!(
                (phi_sum - (fx - e_fx)).abs() < 1e-9,
                "local accuracy: {phi_sum} vs {}",
                fx - e_fx
            );
        }
    }

    #[test]
    fn unused_features_get_zero_shap() {
        let (x, y) = training_data(300, 6, 3);
        // Target ignores features 3..6; a shallow tree will not split on
        // pure noise given the strong signal features.
        let tree = RegressionTree::fit(&x, &y, 6, TreeConfig { max_depth: 2, min_samples_leaf: 5 });
        let used: std::collections::HashSet<usize> = tree
            .nodes()
            .iter()
            .filter_map(|n| match n {
                Node::Split { feature, .. } => Some(*feature),
                Node::Leaf { .. } => None,
            })
            .collect();
        let phi = tree_shap(&tree, &x[..6]);
        for (f, &p) in phi.iter().enumerate() {
            if !used.contains(&f) {
                assert_eq!(p, 0.0, "feature {f} unused but has SHAP {p}");
            }
        }
    }

    #[test]
    fn gbm_shap_local_accuracy() {
        let (x, y) = training_data(400, 4, 4);
        let model =
            GbmRegressor::fit(&x, &y, 4, GbmConfig { n_estimators: 30, ..Default::default() });
        // E[f] = base + lr * sum of tree expectations over empty subset.
        let empty = [false; 4];
        let e_f: f64 = model.base()
            + model.learning_rate()
                * model.trees().iter().map(|t| expected_value(t, &x[..4], &empty)).sum::<f64>();
        let sample = &x[40..44];
        let phi_sum: f64 = gbm_shap(&model, sample).iter().sum();
        let fx = model.predict(sample);
        assert!((phi_sum - (fx - e_f)).abs() < 1e-9, "{phi_sum} vs {}", fx - e_f);
    }

    #[test]
    fn importance_ranks_signal_over_noise() {
        let (x, y) = training_data(500, 5, 5);
        let model =
            GbmRegressor::fit(&x, &y, 5, GbmConfig { n_estimators: 50, ..Default::default() });
        let imp = mean_abs_shap(&model, &x, 500);
        // Features 0 and 1 drive the target; 3 and 4 are pure noise.
        assert!(imp[0] > imp[3] * 3.0, "{imp:?}");
        assert!(imp[1] > imp[4] * 3.0, "{imp:?}");
    }
}
