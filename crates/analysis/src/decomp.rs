//! Seasonal-trend decomposition and the STL-derived characteristics
//! (`trend`, `seas_strength`, `spike`, `linearity`, `curvature`, `e_acf1`,
//! `peak`, `trough`).
//!
//! R's tsfeatures uses STL (loess-based); this implementation uses the
//! classical moving-average decomposition, whose trend/seasonal/remainder
//! components are interchangeable for the *strength* statistics the paper
//! analyzes (both are variance ratios of the same three components).

use tsdata::stats::{mean, variance};

use crate::acf::acf_at;

/// A decomposition into aligned trend/seasonal/remainder components.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Smoothed trend component.
    pub trend: Vec<f64>,
    /// Periodic component (all zeros when no season is given).
    pub seasonal: Vec<f64>,
    /// Residual after removing trend and seasonality.
    pub remainder: Vec<f64>,
    /// Seasonal period used (1 = none).
    pub period: usize,
}

/// Centered moving average with edge padding (window `w`, made odd).
pub fn moving_average(x: &[f64], w: usize) -> Vec<f64> {
    let n = x.len();
    let w = w.max(1) | 1; // odd
    let half = w / 2;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        out.push(x[lo..hi].iter().sum::<f64>() / (hi - lo) as f64);
    }
    out
}

/// Classical additive decomposition. `period = None` (or 1) produces a
/// trend-only decomposition with zero seasonality.
pub fn decompose(x: &[f64], period: Option<usize>) -> Decomposition {
    let n = x.len();
    let period = period.unwrap_or(1).max(1);
    let trend_window = if period > 1 { period } else { (n / 10).clamp(3, 201) };
    let trend = moving_average(x, trend_window);
    let detrended: Vec<f64> = x.iter().zip(&trend).map(|(v, t)| v - t).collect();
    let seasonal = if period > 1 && n >= 2 * period {
        // Phase means, centered to sum to zero.
        let mut sums = vec![0.0; period];
        let mut counts = vec![0usize; period];
        for (i, &d) in detrended.iter().enumerate() {
            sums[i % period] += d;
            counts[i % period] += 1;
        }
        let mut phase: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect();
        let m = mean(&phase);
        for p in phase.iter_mut() {
            *p -= m;
        }
        (0..n).map(|i| phase[i % period]).collect()
    } else {
        vec![0.0; n]
    };
    let remainder: Vec<f64> = detrended.iter().zip(&seasonal).map(|(d, s)| d - s).collect();
    Decomposition { trend, seasonal, remainder, period }
}

/// STL-style characteristics derived from a decomposition.
#[derive(Debug, Clone, Copy)]
pub struct StlFeatures {
    /// Strength of trend: `max(0, 1 − Var(R)/Var(T+R))`.
    pub trend_strength: f64,
    /// Strength of seasonality: `max(0, 1 − Var(R)/Var(S+R))`.
    pub seasonal_strength: f64,
    /// Variance of leave-one-out variances of the remainder.
    pub spike: f64,
    /// Linear coefficient of the trend on (scaled) time.
    pub linearity: f64,
    /// Quadratic coefficient of the trend on (scaled) time.
    pub curvature: f64,
    /// Lag-1 autocorrelation of the remainder.
    pub e_acf1: f64,
    /// Sum of squares of the first 10 remainder autocorrelations.
    pub e_acf10: f64,
    /// Phase (0-based) of the seasonal peak.
    pub peak: f64,
    /// Phase (0-based) of the seasonal trough.
    pub trough: f64,
}

/// Computes the STL feature block from a decomposition.
pub fn stl_features(d: &Decomposition) -> StlFeatures {
    let var_r = variance(&d.remainder);
    let tr: Vec<f64> = d.trend.iter().zip(&d.remainder).map(|(a, b)| a + b).collect();
    let sr: Vec<f64> = d.seasonal.iter().zip(&d.remainder).map(|(a, b)| a + b).collect();
    let ratio = |num: f64, den: f64| if den <= 1e-12 { 0.0 } else { (1.0 - num / den).max(0.0) };
    let trend_strength = ratio(var_r, variance(&tr));
    let seasonal_strength = if d.period > 1 { ratio(var_r, variance(&sr)) } else { 0.0 };

    // Spike: variance of leave-one-out variances of the remainder.
    let n = d.remainder.len();
    let spike = if n > 2 {
        let sum: f64 = d.remainder.iter().sum();
        let sum_sq: f64 = d.remainder.iter().map(|v| v * v).sum();
        let loo_vars: Vec<f64> = d
            .remainder
            .iter()
            .map(|&v| {
                let m = (sum - v) / (n - 1) as f64;
                (sum_sq - v * v) / (n - 1) as f64 - m * m
            })
            .collect();
        variance(&loo_vars)
    } else {
        0.0
    };

    // Linearity & curvature: OLS of trend on orthogonal-ish poly of scaled t.
    let (linearity, curvature) = {
        let n = d.trend.len() as f64;
        let ts: Vec<f64> = (0..d.trend.len()).map(|i| i as f64 / n).collect();
        let t_mean = mean(&ts);
        let t2: Vec<f64> = ts.iter().map(|t| (t - t_mean) * (t - t_mean)).collect();
        let t2_mean = mean(&t2);
        let y_mean = mean(&d.trend);
        let mut stt = 0.0;
        let mut sty = 0.0;
        let mut s22 = 0.0;
        let mut s2y = 0.0;
        for i in 0..d.trend.len() {
            let dt = ts[i] - t_mean;
            let d2 = t2[i] - t2_mean;
            let dy = d.trend[i] - y_mean;
            stt += dt * dt;
            sty += dt * dy;
            s22 += d2 * d2;
            s2y += d2 * dy;
        }
        (if stt > 1e-12 { sty / stt } else { 0.0 }, if s22 > 1e-12 { s2y / s22 } else { 0.0 })
    };

    let e_acf1 = acf_at(&d.remainder, 1);
    let e_acf10 = crate::acf::sum_sq_acf(&d.remainder, 10);

    let (peak, trough) = if d.period > 1 {
        let phase = &d.seasonal[..d.period.min(d.seasonal.len())];
        let mut peak = 0usize;
        let mut trough = 0usize;
        for (i, &v) in phase.iter().enumerate() {
            if v > phase[peak] {
                peak = i;
            }
            if v < phase[trough] {
                trough = i;
            }
        }
        (peak as f64, trough as f64)
    } else {
        (0.0, 0.0)
    };

    StlFeatures {
        trend_strength,
        seasonal_strength,
        spike,
        linearity,
        curvature,
        e_acf1,
        e_acf10,
        peak,
        trough,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_series(n: usize, period: usize, amp: f64, slope: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                slope * i as f64 + amp * (i as f64 / period as f64 * std::f64::consts::TAU).sin()
            })
            .collect()
    }

    #[test]
    fn moving_average_smooths() {
        let x: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 0.0 } else { 2.0 }).collect();
        let ma = moving_average(&x, 11);
        for v in &ma[10..90] {
            assert!((v - 1.0).abs() < 0.15, "{v}");
        }
    }

    #[test]
    fn decomposition_reconstructs() {
        let x = seasonal_series(500, 24, 3.0, 0.01);
        let d = decompose(&x, Some(24));
        for (i, &xi) in x.iter().enumerate() {
            let rebuilt = d.trend[i] + d.seasonal[i] + d.remainder[i];
            assert!((rebuilt - xi).abs() < 1e-9);
        }
    }

    #[test]
    fn seasonal_strength_high_for_seasonal_series() {
        let x = seasonal_series(1000, 24, 5.0, 0.0);
        let f = stl_features(&decompose(&x, Some(24)));
        assert!(f.seasonal_strength > 0.9, "seasonal strength {}", f.seasonal_strength);
    }

    #[test]
    fn seasonal_strength_low_for_noise() {
        let mut state = 12345u64;
        let x: Vec<f64> = (0..1000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let f = stl_features(&decompose(&x, Some(24)));
        assert!(f.seasonal_strength < 0.35, "seasonal strength {}", f.seasonal_strength);
    }

    #[test]
    fn trend_strength_tracks_trendiness() {
        let trendy = seasonal_series(600, 24, 0.5, 0.05);
        let flat = seasonal_series(600, 24, 0.5, 0.0);
        let ft = stl_features(&decompose(&trendy, Some(24)));
        let ff = stl_features(&decompose(&flat, Some(24)));
        assert!(ft.trend_strength > ff.trend_strength);
        assert!(ft.trend_strength > 0.8, "{}", ft.trend_strength);
    }

    #[test]
    fn linearity_sign_follows_slope() {
        let up = seasonal_series(400, 24, 0.1, 0.05);
        let down = seasonal_series(400, 24, 0.1, -0.05);
        assert!(stl_features(&decompose(&up, Some(24))).linearity > 0.0);
        assert!(stl_features(&decompose(&down, Some(24))).linearity < 0.0);
    }

    #[test]
    fn curvature_detects_parabola() {
        let x: Vec<f64> = (0..400).map(|i| (i as f64 / 400.0 - 0.5).powi(2) * 100.0).collect();
        let f = stl_features(&decompose(&x, None));
        assert!(f.curvature > 0.0, "curvature {}", f.curvature);
    }

    #[test]
    fn peak_and_trough_phases() {
        // sin peaks at period/4, troughs at 3·period/4.
        let x = seasonal_series(960, 24, 4.0, 0.0);
        let f = stl_features(&decompose(&x, Some(24)));
        assert!((f.peak - 6.0).abs() <= 1.0, "peak {}", f.peak);
        assert!((f.trough - 18.0).abs() <= 1.0, "trough {}", f.trough);
    }

    #[test]
    fn nonseasonal_has_zero_seasonal_block() {
        let x: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let d = decompose(&x, None);
        assert!(d.seasonal.iter().all(|&v| v == 0.0));
        let f = stl_features(&d);
        assert_eq!(f.seasonal_strength, 0.0);
        assert_eq!(f.peak, 0.0);
    }
}
