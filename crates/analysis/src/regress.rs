//! Simple-regression helper for Table 3: `CR = θ1·TE + θ0` with coefficient
//! standard errors.

use forecast::linalg::lstsq_with_se;
use forecast::model::ForecastError;

/// A fitted simple linear regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinFit {
    /// Slope θ1.
    pub slope: f64,
    /// Intercept θ0.
    pub intercept: f64,
    /// Standard error of the slope.
    pub se_slope: f64,
    /// Standard error of the intercept.
    pub se_intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Fits `y = slope·x + intercept` by OLS.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Result<LinFit, ForecastError> {
    assert_eq!(x.len(), y.len(), "linear_fit: length mismatch");
    let n = x.len();
    let design: Vec<f64> = x.iter().flat_map(|&v| [1.0, v]).collect();
    let (beta, se) = lstsq_with_se(&design, y, n, 2)?;
    let mean_y = y.iter().sum::<f64>() / n as f64;
    let mut sse = 0.0;
    let mut sst = 0.0;
    for i in 0..n {
        let pred = beta[0] + beta[1] * x[i];
        sse += (y[i] - pred) * (y[i] - pred);
        sst += (y[i] - mean_y) * (y[i] - mean_y);
    }
    let r2 = if sst < 1e-12 { 1.0 } else { (1.0 - sse / sst).max(0.0) };
    Ok(LinFit { slope: beta[1], intercept: beta[0], se_slope: se[1], se_intercept: se[0], r2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [5.0, 7.0, 9.0, 11.0];
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-9);
        assert!((f.intercept - 5.0).abs() < 1e-9);
        assert!(f.r2 > 0.999999);
        assert!(f.se_slope < 1e-6);
    }

    #[test]
    fn noisy_line_has_positive_se() {
        let x: Vec<f64> = (0..100).map(|i| i as f64 * 0.01).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 3.0 * v + 1.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 3.0).abs() < 0.2);
        assert!(f.se_slope > 0.0);
        assert!(f.r2 > 0.8);
    }

    #[test]
    fn cr_te_style_fit() {
        // Table-3 style: CR grows ~linearly with TE.
        let te: Vec<f64> = (1..=13).map(|i| i as f64 * 0.005).collect();
        let cr: Vec<f64> = te.iter().map(|&t| 500.0 * t + 2.0).collect();
        let f = linear_fit(&te, &cr).unwrap();
        // Tolerance accounts for the solver's tiny ridge term on a design
        // whose TE column is ~1e-2 scale.
        assert!((f.slope - 500.0).abs() < 1e-2, "slope {}", f.slope);
        assert!((f.intercept - 2.0).abs() < 1e-3, "intercept {}", f.intercept);
    }
}
