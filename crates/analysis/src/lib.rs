//! # analysis — time-series characteristics and explanation toolkit
//!
//! The statistical machinery behind the paper's result analysis (§4):
//!
//! * [`features`] — the 42 tsfeatures characteristics (§4.3.1), built on
//!   [`acf`], [`decomp`], [`rolling`], [`spectral`], [`unitroot`], [`holt`].
//! * [`shap`] — exact TreeSHAP over `forecast`'s gradient-boosted trees
//!   (Figure 5's importance ranking).
//! * [`mod@kneedle`] — Kneedle elbow detection (§4.3.2, Table 5).
//! * [`regress`] — OLS with standard errors (Table 3).
//! * [`correlation`] — Spearman/Pearson (Table 4).

pub mod acf;
pub mod correlation;
pub mod decomp;
pub mod features;
pub mod holt;
pub mod kneedle;
pub mod monitor;
pub mod regress;
pub mod rolling;
pub mod shap;
pub mod spectral;
pub mod unitroot;

pub use correlation::spearman;
pub use features::{extract, FeatureOptions, FeatureVector, FEATURE_NAMES, NUM_FEATURES};
pub use kneedle::{kneedle, Shape};
pub use monitor::{Alert, CharacteristicsMonitor, MonitorConfig, Severity};
pub use regress::{linear_fit, LinFit};
pub use shap::{gbm_shap, mean_abs_shap, tree_shap};
