//! Rolling-window characteristics: the distribution-shift features the
//! paper identifies as the key TFE predictors (`max_kl_shift`,
//! `max_level_shift`, `max_var_shift`, §4.3.1), plus tiled-window
//! stability/lumpiness, crossing points, flat spots, and the Hurst
//! exponent.

use tsdata::stats::{mean, variance};

/// A shift statistic: its maximum value and the (0-based) window index at
/// which it occurs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shift {
    /// Maximum shift observed.
    pub max: f64,
    /// Index of the window where the maximum occurs.
    pub time: f64,
}

const ZERO_SHIFT: Shift = Shift { max: 0.0, time: 0.0 };

/// Largest absolute difference between means of consecutive width-`w`
/// windows (tsfeatures `max_level_shift`).
pub fn max_level_shift(x: &[f64], w: usize) -> Shift {
    rolling_shift(x, w, |a, b| (mean(a) - mean(b)).abs())
}

/// Largest absolute difference between variances of consecutive windows
/// (`max_var_shift`).
pub fn max_var_shift(x: &[f64], w: usize) -> Shift {
    rolling_shift(x, w, |a, b| (variance(a) - variance(b)).abs())
}

fn rolling_shift(x: &[f64], w: usize, stat: impl Fn(&[f64], &[f64]) -> f64) -> Shift {
    if x.len() < 2 * w || w == 0 {
        return ZERO_SHIFT;
    }
    let mut best = ZERO_SHIFT;
    for start in 0..=x.len() - 2 * w {
        let a = &x[start..start + w];
        let b = &x[start + w..start + 2 * w];
        let s = stat(a, b);
        if s > best.max {
            best = Shift { max: s, time: start as f64 };
        }
    }
    best
}

/// Largest Kullback–Leibler divergence between kernel density estimates of
/// consecutive width-`w` windows (`max_kl_shift`) — the paper's single most
/// important TFE predictor.
///
/// Densities are Gaussian-kernel estimates evaluated on a shared grid, with
/// a small floor to keep the divergence finite (mirroring tsfeatures).
pub fn max_kl_shift(x: &[f64], w: usize) -> Shift {
    const GRID: usize = 100;
    const FLOOR: f64 = 1e-6;
    if x.len() < 2 * w || w == 0 {
        return ZERO_SHIFT;
    }
    let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !(hi - lo).is_finite() || hi - lo < 1e-12 {
        return ZERO_SHIFT;
    }
    let grid: Vec<f64> = (0..GRID).map(|i| lo + (hi - lo) * i as f64 / (GRID - 1) as f64).collect();
    // Per-window Silverman bandwidth, floored at the grid resolution. A
    // window flattened to a plateau (what PMC produces) gets a near-delta
    // density, which is exactly why the paper finds max_kl_shift so
    // sensitive to PMC's averaging (§4.3.3).
    let bw_floor = (hi - lo) / GRID as f64;
    let density = |window: &[f64]| -> Vec<f64> {
        let sd = variance(window).sqrt();
        let bw = (1.06 * sd * (window.len() as f64).powf(-0.2)).max(bw_floor);
        let mut d: Vec<f64> = grid
            .iter()
            .map(|&g| window.iter().map(|&v| (-0.5 * ((g - v) / bw).powi(2)).exp()).sum::<f64>())
            .collect();
        let total: f64 = d.iter().sum::<f64>().max(1e-300);
        for v in d.iter_mut() {
            *v = (*v / total).max(FLOOR);
        }
        d
    };

    // Step windows by w/2 for efficiency on long series (densities are
    // O(w·GRID) each); tsfeatures steps by 1, but the maximum over
    // half-overlapping windows converges to the same shift location.
    let step = (w / 2).max(1);
    let mut best = ZERO_SHIFT;
    let mut start = 0;
    while start + 2 * w <= x.len() {
        let p = density(&x[start..start + w]);
        let q = density(&x[start + w..start + 2 * w]);
        let kl: f64 = p.iter().zip(&q).map(|(&pi, &qi)| pi * (pi / qi).ln()).sum();
        if kl > best.max {
            best = Shift { max: kl, time: start as f64 };
        }
        start += step;
    }
    best
}

/// Variance of tiled (non-overlapping) window means (`stability`).
pub fn stability(x: &[f64], w: usize) -> f64 {
    tiled(x, w, mean)
}

/// Variance of tiled window variances (`lumpiness`).
pub fn lumpiness(x: &[f64], w: usize) -> f64 {
    tiled(x, w, variance)
}

fn tiled(x: &[f64], w: usize, stat: impl Fn(&[f64]) -> f64) -> f64 {
    if w == 0 || x.len() < w {
        return 0.0;
    }
    let stats: Vec<f64> = x.chunks_exact(w).map(stat).collect();
    variance(&stats)
}

/// Number of times the series crosses its median (`crossing_points`).
pub fn crossing_points(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let mut sorted = x.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = tsdata::stats::percentile(&sorted, 0.5);
    let above: Vec<bool> = x.iter().map(|&v| v > median).collect();
    above.windows(2).filter(|w| w[0] != w[1]).count() as f64
}

/// Longest run of identical decile-bucket membership (`flat_spots`).
pub fn flat_spots(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if hi - lo < 1e-12 {
        return x.len() as f64;
    }
    let bucket = |v: f64| (((v - lo) / (hi - lo) * 10.0).floor() as i32).min(9);
    let mut best = 1usize;
    let mut run = 1usize;
    for w in x.windows(2) {
        if bucket(w[0]) == bucket(w[1]) {
            run += 1;
            best = best.max(run);
        } else {
            run = 1;
        }
    }
    best as f64
}

/// Hurst exponent via the rescaled-range (R/S) method: slope of
/// `log(R/S)` against `log(window)` over dyadic windows.
pub fn hurst(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 32 {
        return 0.5;
    }
    let mut log_w = Vec::new();
    let mut log_rs = Vec::new();
    let mut w = 8usize;
    while w <= n / 2 {
        let mut rs_vals = Vec::new();
        for chunk in x.chunks_exact(w) {
            let m = mean(chunk);
            let mut cum = 0.0;
            let mut min_c = f64::INFINITY;
            let mut max_c = f64::NEG_INFINITY;
            for &v in chunk {
                cum += v - m;
                min_c = min_c.min(cum);
                max_c = max_c.max(cum);
            }
            let r = max_c - min_c;
            let s = variance(chunk).sqrt();
            if s > 1e-12 {
                rs_vals.push(r / s);
            }
        }
        if !rs_vals.is_empty() {
            log_w.push((w as f64).ln());
            log_rs.push(mean(&rs_vals).ln());
        }
        w *= 2;
    }
    if log_w.len() < 2 {
        return 0.5;
    }
    // OLS slope.
    let mw = mean(&log_w);
    let mr = mean(&log_rs);
    let num: f64 = log_w.iter().zip(&log_rs).map(|(a, b)| (a - mw) * (b - mr)).sum();
    let den: f64 = log_w.iter().map(|a| (a - mw) * (a - mw)).sum();
    if den < 1e-12 {
        0.5
    } else {
        (num / den).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn level_shift_detects_step() {
        let mut x = vec![0.0; 200];
        for v in x[100..].iter_mut() {
            *v = 10.0;
        }
        let s = max_level_shift(&x, 20);
        assert!((s.max - 10.0).abs() < 1e-9);
        assert!((s.time - 80.0).abs() < 1.0, "time {}", s.time);
    }

    #[test]
    fn var_shift_detects_volatility_change() {
        let mut x = noise(200, 1);
        for v in x[100..].iter_mut() {
            *v *= 10.0;
        }
        let s = max_var_shift(&x, 25);
        assert!(s.max > 0.5, "var shift {}", s.max);
        assert!(s.time >= 50.0 && s.time <= 100.0, "time {}", s.time);
    }

    #[test]
    fn kl_shift_detects_distribution_change() {
        // Same mean and variance but different shape after the change point:
        // uniform-ish noise vs bimodal.
        let mut x = noise(400, 2);
        for (i, v) in x[200..].iter_mut().enumerate() {
            *v = if i % 2 == 0 { 0.45 } else { -0.45 };
        }
        let s = max_kl_shift(&x, 50);
        let baseline = max_kl_shift(&noise(400, 3), 50);
        assert!(s.max > 2.0 * baseline.max, "{} vs baseline {}", s.max, baseline.max);
    }

    #[test]
    fn kl_shift_zero_for_constant() {
        assert_eq!(max_kl_shift(&[5.0; 100], 10), ZERO_SHIFT);
    }

    #[test]
    fn shifts_safe_on_short_input() {
        assert_eq!(max_level_shift(&[1.0, 2.0], 5), ZERO_SHIFT);
        assert_eq!(max_var_shift(&[], 5), ZERO_SHIFT);
        assert_eq!(max_kl_shift(&[1.0], 5), ZERO_SHIFT);
    }

    #[test]
    fn stability_and_lumpiness() {
        // Stable mean, changing variance -> low stability, high lumpiness.
        let mut x = noise(400, 4);
        for v in x[200..].iter_mut() {
            *v *= 5.0;
        }
        let stab = stability(&x, 50);
        let lump = lumpiness(&x, 50);
        assert!(lump > stab, "lumpiness {lump} vs stability {stab}");
        // Changing mean, same variance -> stability dominates.
        let mut y = noise(400, 5);
        for v in y[200..].iter_mut() {
            *v += 5.0;
        }
        assert!(stability(&y, 50) > lumpiness(&y, 50));
    }

    #[test]
    fn crossing_points_counts() {
        let x = [0.0, 2.0, 0.0, 2.0, 0.0, 2.0];
        // median = 1; alternating above/below -> 5 crossings
        assert_eq!(crossing_points(&x), 5.0);
        assert_eq!(crossing_points(&[1.0]), 0.0);
    }

    #[test]
    fn flat_spots_tracks_plateaus() {
        let mut x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        x.extend(vec![100.0; 30]); // long plateau in top decile
        assert!(flat_spots(&x) >= 30.0);
        assert_eq!(flat_spots(&[7.0; 10]), 10.0);
    }

    #[test]
    fn hurst_ranges() {
        // White noise: H ≈ 0.5.
        let h_noise = hurst(&noise(4096, 6));
        assert!((0.35..0.75).contains(&h_noise), "noise H {h_noise}");
        // A trending random walk is persistent: H near 1.
        let mut walk = vec![0.0];
        for v in noise(4095, 7) {
            let prev = *walk.last().expect("non-empty");
            walk.push(prev + v + 0.05);
        }
        let h_walk = hurst(&walk);
        assert!(h_walk > h_noise, "walk {h_walk} vs noise {h_noise}");
    }
}
